"""The incremental uncleanliness fold.

:class:`IncrementalState` consumes :class:`~repro.stream.batches.DayBatch`
objects in day order and maintains, at all times, exactly what the batch
pipeline would compute for the days ingested so far:

* the rolling report sets (provided feeds merged as they arrive, scan
  detections unioned per day, spam flags recomputed from exact mergeable
  aggregates — spam is the one *non-monotone* report: a source can
  unflag as its size variance grows);
* per-class :class:`BlockCounter` tables — exact integer address counts
  per scored block, incremented by fresh addresses and decremented when
  a spam source unflags, pruning blocks whose counts reach zero so the
  scored block set matches the batch scorer's;
* per-prefix block counters over R_unclean for the §4 density
  statistics (``block_counts``);
* the §7 noisy-OR score table, recomputed each day from the exact
  counts in the fixed :data:`repro.core.folds.CLASS_ORDER` (floating
  multiplication order matters), plus the threshold blocklist and the
  interval indexes serving the low-latency query surface.

Work per day is proportional to the day's flow volume and the score
rebuild (``O(blocks)``), never to the accumulated window — that is the
speedup :mod:`benchmarks.bench_stream` guards — while replaying a whole
window reproduces the batch path bit for bit
(``tests/test_stream_replay.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro import obs
from repro.core import folds
from repro.core.report import DataClass, Report, ReportType
from repro.core.uncleanliness import BlockScores
from repro.detect.scan import ScanDetector, ScanDetectorConfig
from repro.detect.spam import SpamAggregates, SpamDetectorConfig
from repro.core.cidr import PREFIX_RANGE
from repro.ipspace.cidr import CIDRBlock, mask_array
from repro.ipspace.intervals import IntervalIndex
from repro.ipspace.kernels import merge_unique, remove_sorted
from repro.obs import metrics as obs_metrics
from repro.sim.timeline import Window
from repro.stream.batches import DayBatch

__all__ = ["StreamConfig", "BlockCounter", "IncrementalState", "IngestDelta"]

#: Tags the fold computes itself; feeds may not deliver them.
_COMPUTED_TAGS = ("scan", "spam", "unclean")

_EMPTY_U32 = np.asarray([], dtype=np.uint32)


@dataclass(frozen=True)
class StreamConfig:
    """Configuration of the streaming fold (fingerprintable)."""

    #: The observation window the stream folds over.
    window: Window

    #: Scored block granularity (the paper's /24 default).
    prefix_len: int = 24

    #: Score threshold for the recommended blocklist.
    threshold: float = 0.5

    #: Per-class noisy-OR weights, as a (class, weight) tuple so the
    #: config stays hashable/fingerprintable.  Order is the evaluation
    #: order and must match :data:`repro.core.folds.CLASS_ORDER`.
    weights: Tuple[Tuple[str, float], ...] = folds.DEFAULT_CLASS_WEIGHTS

    #: Prefix lengths tracked for R_unclean block-count densities.
    prefixes: Tuple[int, ...] = tuple(PREFIX_RANGE)

    #: Detector calibrations (must match the batch scenario's for
    #: replay equivalence).
    scan_detector: ScanDetectorConfig = ScanDetectorConfig()
    spam_detector: SpamDetectorConfig = SpamDetectorConfig()

    def validate(self) -> None:
        if not 0 <= self.prefix_len <= 32:
            raise ValueError(f"prefix length out of range: {self.prefix_len}")
        if not 0.0 <= self.threshold <= 1.0:
            raise ValueError(f"threshold out of [0, 1]: {self.threshold}")
        if tuple(cls for cls, _ in self.weights) != folds.CLASS_ORDER:
            raise ValueError(
                "weights must list the scoring classes in CLASS_ORDER"
            )
        for n in self.prefixes:
            if not 0 <= n <= 32:
                raise ValueError(f"prefix length out of range: {n}")
        self.scan_detector.validate()
        self.spam_detector.validate()

    def weight_of(self, data_class: str) -> float:
        return dict(self.weights)[data_class]


class BlockCounter:
    """Exact address counts per CIDR block at one prefix length.

    Tracks, for a dynamic set of addresses, how many member addresses
    fall in each touched block — supporting increment (new addresses),
    decrement (retracted addresses, i.e. spam unflags) and zero-count
    pruning, so ``blocks`` is at all times exactly
    :math:`C_n(S)` of the underlying set ``S``.
    """

    __slots__ = ("prefix_len", "blocks", "counts")

    def __init__(
        self,
        prefix_len: int,
        blocks: Optional[np.ndarray] = None,
        counts: Optional[np.ndarray] = None,
    ) -> None:
        self.prefix_len = int(prefix_len)
        self.blocks = (
            np.asarray(blocks, dtype=np.uint32)
            if blocks is not None
            else _EMPTY_U32.copy()
        )
        self.counts = (
            np.asarray(counts, dtype=np.int64)
            if counts is not None
            else np.asarray([], dtype=np.int64)
        )
        if self.blocks.size != self.counts.size:
            raise ValueError("blocks and counts must align")

    def add(self, addresses: np.ndarray) -> None:
        """Count ``addresses`` (unique, newly added to the set) in."""
        if addresses.size == 0:
            return
        nets, per_block = np.unique(
            mask_array(addresses, self.prefix_len), return_counts=True
        )
        merged, fresh = merge_unique(self.blocks, nets)
        if fresh.any():
            positions = np.searchsorted(self.blocks, nets[fresh])
            self.counts = np.insert(self.counts, positions, 0)
            self.blocks = merged
        self.counts[np.searchsorted(self.blocks, nets)] += per_block

    def remove(self, addresses: np.ndarray) -> None:
        """Count ``addresses`` (unique, just removed from the set) out,
        pruning blocks whose count reaches zero."""
        if addresses.size == 0:
            return
        nets, per_block = np.unique(
            mask_array(addresses, self.prefix_len), return_counts=True
        )
        positions = np.searchsorted(self.blocks, nets)
        if positions.size and (
            positions.max(initial=0) >= self.blocks.size
            or not np.array_equal(self.blocks[positions], nets)
        ):
            raise ValueError("removing addresses from blocks never added")
        self.counts[positions] -= per_block
        if (self.counts[positions] < 0).any():
            raise ValueError("block count went negative")
        if (self.counts[positions] == 0).any():
            keep = self.counts > 0
            self.blocks = self.blocks[keep]
            self.counts = self.counts[keep]

    def __len__(self) -> int:
        return int(self.blocks.size)

    def __repr__(self) -> str:
        return (
            f"BlockCounter(/{self.prefix_len}, blocks={len(self)}, "
            f"addresses={int(self.counts.sum())})"
        )


@dataclass(frozen=True)
class IngestDelta:
    """What one day's ingest changed — the per-day metric payload."""

    day: int
    flows: int
    #: Newly reported addresses per tag (post reserved-range filtering).
    fresh: Mapping[str, int] = field(default_factory=dict)
    #: Spam sources that unflagged this day (the non-monotone case).
    retracted_spam: int = 0
    #: Scored blocks / blocklist entries after this day.
    blocks: int = 0
    blocklist_size: int = 0


class IncrementalState:
    """Rolling uncleanliness state: ``fold(ingest, days)``."""

    def __init__(self, config: StreamConfig) -> None:
        config.validate()
        self.config = config
        #: Last ingested day (start_day - 1 when nothing ingested yet).
        self.cursor = config.window.start_day - 1
        self.days_ingested = 0
        self.flows_ingested = 0
        self._addresses: Dict[str, np.ndarray] = {
            "scan": _EMPTY_U32,
            "spam": _EMPTY_U32,
        }
        self._meta: Dict[str, Tuple[str, str, object]] = {}
        self._spam = SpamAggregates.empty()
        self._class_counters = {
            cls: BlockCounter(config.prefix_len) for cls in folds.CLASS_ORDER
        }
        self._unclean = _EMPTY_U32
        self._prefix_counters = {
            int(n): BlockCounter(n) for n in config.prefixes
        }
        self._rebuild_derived()

    # -- ingest ------------------------------------------------------------

    def ingest(self, batch: DayBatch) -> IngestDelta:
        """Fold one day in.  Days must arrive in strictly increasing
        order within the configured window."""
        day = int(batch.day)
        if day <= self.cursor:
            raise ValueError(
                f"day {day} already ingested (cursor at {self.cursor})"
            )
        if not self.config.window.contains_day(day):
            raise ValueError(
                f"day {day} outside window {self.config.window}"
            )
        with obs.instrument("stream.ingest", events=len(batch.flows), day=day):
            return self._ingest(batch, day)

    def _ingest(self, batch: DayBatch, day: int) -> IngestDelta:
        fresh: Dict[str, np.ndarray] = {}

        # 1. Provided feeds: merge each delivered report into its tag.
        for tag, report in batch.provided.items():
            if tag in _COMPUTED_TAGS:
                raise ValueError(
                    f"tag {tag!r} is computed by the fold, not a feed"
                )
            filtered = report.without_reserved()
            self._meta.setdefault(
                tag, (filtered.report_type, filtered.data_class, filtered.period)
            )
            merged, new = merge_unique(
                self._addresses.get(tag, _EMPTY_U32), filtered.addresses
            )
            self._addresses[tag] = merged
            fresh[tag] = filtered.addresses[new]

        # 2. Scan: hour-bucketed, hours never span days, so per-day
        # detections union to the whole-window detection.
        scanners = folds.observed_report(
            "scan",
            ScanDetector(self.config.scan_detector).detect(batch.flows),
            self.config.window,
        ).addresses
        merged, new = merge_unique(self._addresses["scan"], scanners)
        self._addresses["scan"] = merged
        fresh["scan"] = scanners[new]

        # 3. Spam: fold exact aggregates, recompute the flag set — the
        # non-monotone step; a source can leave the report.
        self._spam = self._spam.merge(SpamAggregates.from_flows(batch.flows))
        spam_now = folds.observed_report(
            "spam", self._spam.flagged(self.config.spam_detector),
            self.config.window,
        ).addresses
        spam_before = self._addresses["spam"]
        spam_added = np.setdiff1d(spam_now, spam_before).astype(np.uint32)
        spam_removed = np.setdiff1d(spam_before, spam_now).astype(np.uint32)
        self._addresses["spam"] = spam_now
        fresh["spam"] = spam_added

        # 4. Per-class score counters follow the report deltas.
        for tag, cls in folds.CLASS_OF_TAG.items():
            added = fresh.get(tag)
            if added is not None and added.size:
                self._class_counters[cls].add(added)
        self._class_counters[DataClass.SPAM].remove(spam_removed)

        # 5. R_unclean and its per-prefix density counters.
        additions = _EMPTY_U32
        for tag in folds.UNCLEAN_TAGS:
            additions, _ = merge_unique(additions, fresh.get(tag, _EMPTY_U32))
        self._unclean, new = merge_unique(self._unclean, additions)
        added_unclean = additions[new]
        removed_unclean = self._unclean_removals(spam_removed)
        if removed_unclean.size:
            self._unclean = remove_sorted(self._unclean, removed_unclean)
        for counter in self._prefix_counters.values():
            counter.add(added_unclean)
            counter.remove(removed_unclean)

        # 6. Derived views: scores, blocklist, interval indexes.
        self._rebuild_derived()

        self.cursor = day
        self.days_ingested += 1
        self.flows_ingested += len(batch.flows)

        delta = IngestDelta(
            day=day,
            flows=len(batch.flows),
            fresh={tag: int(arr.size) for tag, arr in fresh.items()},
            retracted_spam=int(spam_removed.size),
            blocks=len(self._scores),
            blocklist_size=int(self._blocklist.size),
        )
        self._record_metrics(delta)
        return delta

    def _unclean_removals(self, spam_removed: np.ndarray) -> np.ndarray:
        """Retracted spam sources no other unclean report still claims."""
        if spam_removed.size == 0:
            return _EMPTY_U32
        still_claimed = np.zeros(spam_removed.size, dtype=bool)
        for tag in folds.UNCLEAN_TAGS:
            if tag == "spam":
                continue
            addresses = self._addresses.get(tag)
            if addresses is None or addresses.size == 0:
                continue
            idx = np.searchsorted(addresses, spam_removed)
            idx[idx == addresses.size] = 0
            still_claimed |= addresses[idx] == spam_removed
        return spam_removed[~still_claimed]

    def _rebuild_derived(self) -> None:
        """Recompute scores/blocklist/indexes from the exact counters.

        Mirrors :meth:`UncleanlinessScorer.score` exactly: same block
        union, same integer counts, same evidence arithmetic in the
        same class order — the counters make the counts identical and
        this makes the floats identical.
        """
        blocks = _EMPTY_U32
        for cls in folds.CLASS_ORDER:
            blocks, _ = merge_unique(blocks, self._class_counters[cls].blocks)
        class_counts: Dict[str, np.ndarray] = {}
        for cls in folds.CLASS_ORDER:
            counter = self._class_counters[cls]
            column = np.zeros(blocks.size, dtype=np.int64)
            if counter.blocks.size:
                column[np.searchsorted(blocks, counter.blocks)] = counter.counts
            class_counts[cls] = column

        miss_probability = np.ones(blocks.size, dtype=np.float64)
        for cls in folds.CLASS_ORDER:
            evidence = 1.0 - np.exp(-class_counts[cls] / 4.0)
            miss_probability *= (
                1.0 - np.clip(self.config.weight_of(cls), 0, 1) * evidence
            )
        scores = 1.0 - miss_probability

        self._scores = BlockScores(
            prefix_len=self.config.prefix_len,
            blocks=blocks,
            class_counts=class_counts,
            scores=scores,
        )
        self._blocklist = folds.blocklist_networks(self._scores, self.config.threshold)
        self._score_index = IntervalIndex.from_blocks(
            blocks, self.config.prefix_len, values=scores
        )
        self._block_index = IntervalIndex.from_blocks(
            self._blocklist, self.config.prefix_len
        )

    def _record_metrics(self, delta: IngestDelta) -> None:
        obs_metrics.inc("stream.ingest.days")
        obs_metrics.inc("stream.ingest.flows", delta.flows)
        for tag, count in delta.fresh.items():
            obs_metrics.inc(f"stream.fresh.{tag}", count)
        if delta.retracted_spam:
            obs_metrics.inc("stream.retracted.spam", delta.retracted_spam)
        obs_metrics.set_gauge("stream.blocks", delta.blocks)
        obs_metrics.set_gauge("stream.blocklist.size", delta.blocklist_size)
        obs_metrics.set_gauge("stream.cursor", delta.day)

    def snapshot(self) -> "IncrementalState":
        """An independent copy of the fold at its current cursor.

        Checkpoints must store snapshots, not the live state: the store's
        memory tier keeps objects by reference, and the fold mutates its
        counter arrays in place, so an aliased checkpoint would silently
        advance past the day it claims to commit.  Report arrays and spam
        aggregates are never mutated in place (merges replace them), so
        those are shared; only the counters are copied.
        """
        clone = IncrementalState.__new__(IncrementalState)
        clone.config = self.config
        clone.cursor = self.cursor
        clone.days_ingested = self.days_ingested
        clone.flows_ingested = self.flows_ingested
        clone._addresses = dict(self._addresses)
        clone._meta = dict(self._meta)
        clone._spam = self._spam
        clone._class_counters = {
            cls: BlockCounter(c.prefix_len, c.blocks.copy(), c.counts.copy())
            for cls, c in self._class_counters.items()
        }
        clone._unclean = self._unclean
        clone._prefix_counters = {
            n: BlockCounter(c.prefix_len, c.blocks.copy(), c.counts.copy())
            for n, c in self._prefix_counters.items()
        }
        clone._rebuild_derived()
        return clone

    # -- query surface -----------------------------------------------------

    def report(self, tag: str) -> Report:
        """The rolling report for ``tag``, metadata and all — equal (by
        ``Report.__eq__``) to the batch pipeline's report once the whole
        window has been replayed."""
        if tag == "unclean":
            return Report(
                tag="unclean",
                addresses=self._unclean,
                report_type=ReportType.PROVIDED,
                data_class=DataClass.SPECIAL,
                period=self.config.window.dates(),
            )
        if tag in ("scan", "spam"):
            return folds.observed_report(
                tag, self._addresses[tag], self.config.window
            )
        try:
            report_type, data_class, period = self._meta[tag]
        except KeyError:
            raise KeyError(f"no such report in stream state: {tag!r}") from None
        return Report(
            tag=tag,
            addresses=self._addresses[tag],
            report_type=report_type,
            data_class=data_class,
            period=period,
        )

    @property
    def tags(self) -> Tuple[str, ...]:
        """All report tags currently available (computed tags included)."""
        return tuple(sorted(self._addresses)) + ("unclean",)

    def scores(self) -> BlockScores:
        """The current §7 score table (shares arrays with the state)."""
        return self._scores

    def blocklist(self) -> np.ndarray:
        """Sorted masked networks at or above the score threshold."""
        return self._blocklist

    def blocklist_blocks(self) -> List[CIDRBlock]:
        return [
            CIDRBlock(int(net), self.config.prefix_len)
            for net in self._blocklist
        ]

    @property
    def score_index(self) -> IntervalIndex:
        """Interval index over all scored blocks, valued by score."""
        return self._score_index

    @property
    def block_index(self) -> IntervalIndex:
        """Interval index over the current blocklist."""
        return self._block_index

    @property
    def unclean_addresses(self) -> np.ndarray:
        return self._unclean

    def block_counts(self) -> Dict[int, int]:
        """``{prefix_len: |C_n(R_unclean)|}`` — the §4 density counts."""
        return {n: len(counter) for n, counter in self._prefix_counters.items()}

    def __repr__(self) -> str:
        return (
            f"IncrementalState(window={self.config.window}, "
            f"cursor={self.cursor}, days={self.days_ingested}, "
            f"blocks={len(self._scores)}, "
            f"blocklist={int(self._blocklist.size)})"
        )
