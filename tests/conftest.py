"""Shared fixtures.

The small scenario takes ~1s to build, so it is session-scoped; tests
must treat it as read-only.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.scenario import ScenarioConfig
from repro.core.stages import reset_scenario_engine
from repro.engine.store import reset_default_store
from repro.flows.generator import TrafficGenerator
from repro.sim.botnet import BotnetConfig, BotnetSimulation
from repro.sim.internet import InternetConfig, SyntheticInternet
from repro.sim.phishing import PhishingConfig, PhishingSimulation
from repro.sim.timeline import PAPER_WINDOWS


@pytest.fixture(scope="session", autouse=True)
def artifact_cache(tmp_path_factory):
    """Isolate the on-disk artifact cache for the whole test session.

    Keeps tests hermetic (no reads from a developer's warm
    ``~/.cache/repro``) and keeps test artifacts out of it.  An
    explicitly *empty* ``REPRO_CACHE_DIR`` is honoured as-is so the CI
    memory-only leg genuinely runs the suite without a disk cache.
    """
    previous_runs = os.environ.get("REPRO_RUNS_DIR")
    os.environ["REPRO_RUNS_DIR"] = str(tmp_path_factory.mktemp("repro-runs"))

    previous = os.environ.get("REPRO_CACHE_DIR")
    if previous == "":
        reset_default_store()
        reset_scenario_engine()
        yield None
    else:
        path = tmp_path_factory.mktemp("repro-cache")
        os.environ["REPRO_CACHE_DIR"] = str(path)
        reset_default_store()
        reset_scenario_engine()
        yield path
        if previous is None:
            os.environ.pop("REPRO_CACHE_DIR", None)
        else:
            os.environ["REPRO_CACHE_DIR"] = previous

    if previous_runs is None:
        os.environ.pop("REPRO_RUNS_DIR", None)
    else:
        os.environ["REPRO_RUNS_DIR"] = previous_runs
    reset_default_store()
    reset_scenario_engine()


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def small_scenario(artifact_cache):
    """The fast end-to-end scenario; treat as read-only."""
    from repro.api import run_scenario

    return run_scenario(ScenarioConfig.small()).scenario


@pytest.fixture(scope="session")
def tiny_internet():
    """A very small synthetic Internet for unit tests."""
    config = InternetConfig(num_slash16=25, mean_hosts=20.0)
    return SyntheticInternet(config, np.random.default_rng(99))


@pytest.fixture(scope="session")
def tiny_botnet(tiny_internet):
    config = BotnetConfig(daily_compromises=12.0, horizon_days=334)
    return BotnetSimulation(tiny_internet, config, np.random.default_rng(100))


@pytest.fixture(scope="session")
def tiny_phishing(tiny_internet):
    config = PhishingConfig(daily_sites=3.0)
    return PhishingSimulation(tiny_internet, config, np.random.default_rng(101))


@pytest.fixture(scope="session")
def tiny_traffic(tiny_internet, tiny_botnet):
    """One October border capture at unit-test scale."""
    from repro.flows.generator import TrafficConfig

    generator = TrafficGenerator(
        tiny_internet,
        tiny_botnet,
        TrafficConfig(benign_clients_per_day=40, suspicious_hosts=120),
    )
    return generator.generate(PAPER_WINDOWS.OCTOBER, np.random.default_rng(102))
