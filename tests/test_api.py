"""The public facade: acceptance imports, equivalence, deprecation shims."""

from __future__ import annotations

import dataclasses
import warnings

import numpy as np
import pytest

import repro
from repro.api import (
    BlockingResult,
    DensityResult,
    PredictionResult,
    ScenarioRun,
    density_test,
    evaluate_blocking,
    prediction_test,
    run_scenario,
)
from repro.core.scenario import PaperScenario, ScenarioConfig


def test_acceptance_import_line():
    """The exact import line the issue promises must work."""
    from repro.api import (  # noqa: F401
        run_scenario,
        density_test,
        prediction_test,
        evaluate_blocking,
    )


def test_top_level_reexports_facade_only():
    assert repro.run_scenario is run_scenario
    assert repro.density_test is density_test
    assert repro.prediction_test is prediction_test
    assert repro.evaluate_blocking is evaluate_blocking
    assert repro.__version__ == "1.2.0"


def test_run_scenario_returns_frozen_shared_handle(small_scenario):
    run = run_scenario(small=True)
    assert isinstance(run, ScenarioRun)
    assert run.fingerprint == run.config.fingerprint()
    assert run_scenario(small=True) == run  # same fingerprint, equal handle
    assert run_scenario(small=True).scenario is run.scenario  # shared build
    with pytest.raises(dataclasses.FrozenInstanceError):
        run.config = ScenarioConfig()


def test_run_scenario_rejects_config_plus_small():
    with pytest.raises(ValueError, match="not both"):
        run_scenario(ScenarioConfig.small(), small=True)


def test_run_scenario_seed_override():
    run = run_scenario(small=True, seed=123)
    assert run.config.seed == 123
    assert run.config.fingerprint() != run_scenario(small=True).fingerprint


def test_scenario_run_delegates_to_scenario(small_scenario):
    run = run_scenario(small=True)
    assert run.report("bot") is run.scenario.report("bot")
    tags = {row["tag"] for row in run.table1_rows()}
    assert {"bot", "control", "scan"} <= tags
    assert run.partition is run.scenario.partition
    with pytest.raises(AttributeError):
        run.no_such_attribute


def test_density_test_facade_matches_core(small_scenario):
    """Facade-with-tags == core-with-reports under the same rng stream."""
    from repro.core.density import density_test as core_density

    run = run_scenario(small=True)
    facade = density_test(run, "bot", subsets=50)
    expected = core_density(
        small_scenario.report("bot"),
        small_scenario.report("control"),
        np.random.default_rng(small_scenario.config.seed ^ 0xC1D),
        subsets=50,
    )
    assert isinstance(facade, DensityResult)
    assert facade.report_tag == expected.report_tag
    assert facade.prefixes == expected.prefixes
    assert facade.observed == expected.observed
    assert facade.control == expected.control
    assert facade.hypothesis_holds() == expected.hypothesis_holds()


def test_density_test_accepts_every_scenario_form(small_scenario):
    run = run_scenario(small=True)
    by_run = density_test(run, "bot", subsets=20, seed=5)
    by_config = density_test(ScenarioConfig.small(), "bot", subsets=20, seed=5)
    by_scenario = density_test(run.scenario, "bot", subsets=20, seed=5)
    assert by_run.observed == by_config.observed == by_scenario.observed
    assert by_run.control == by_config.control == by_scenario.control
    with pytest.raises(TypeError, match="expected a ScenarioRun"):
        density_test(42, "bot")


def test_rng_and_seed_are_mutually_exclusive(small_scenario):
    run = run_scenario(small=True)
    with pytest.raises(ValueError, match="rng or seed"):
        density_test(run, "bot", rng=np.random.default_rng(0), seed=1)


def test_prediction_test_facade(small_scenario):
    run = run_scenario(small=True)
    result = prediction_test(run, "bot-test", "bot", subsets=50)
    assert isinstance(result, PredictionResult)
    assert result.past_tag == "bot-test"
    assert result.present_tag == "bot"
    assert set(result.observed) == set(result.prefixes)
    assert all(0.0 <= result.exceedance[n] <= 1.0 for n in result.prefixes)


def test_evaluate_blocking_facade(small_scenario):
    run = run_scenario(small=True)
    result = evaluate_blocking(run)
    assert isinstance(result, BlockingResult)
    assert [row.prefix for row in result.rows] == list(range(24, 33))


# -- deprecation shims ------------------------------------------------------


def test_direct_scenario_construction_warns_once(small_scenario):
    import repro.core.scenario as scenario_mod

    old = scenario_mod._DIRECT_INIT_WARNED
    scenario_mod._DIRECT_INIT_WARNED = False
    try:
        with pytest.warns(DeprecationWarning, match="repro.api.run_scenario"):
            PaperScenario(ScenarioConfig.small())
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # second construction is silent
            PaperScenario(ScenarioConfig.small())
    finally:
        scenario_mod._DIRECT_INIT_WARNED = old


def test_legacy_top_level_names_warn_once():
    repro._LEGACY_WARNED.discard("PaperScenario")
    with pytest.warns(DeprecationWarning, match="top-level 'repro' package"):
        assert repro.PaperScenario is PaperScenario
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert repro.PaperScenario is PaperScenario  # silent on repeat


def test_experiments_common_shim_warns_and_shares_cache(small_scenario):
    import repro.experiments.common as common

    common._WARNED.discard("default_scenario")
    with pytest.warns(DeprecationWarning, match="repro.api"):
        legacy = common.default_scenario(ScenarioConfig.small())
    assert legacy is run_scenario(small=True).scenario


def test_unknown_top_level_name_raises():
    with pytest.raises(AttributeError):
        repro.definitely_not_a_name
