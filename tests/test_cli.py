"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_experiment_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure9"])

    def test_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.small is False
        assert args.subsets == 200
        assert args.seed is None
        assert args.workers is None

    def test_workers_flag(self):
        args = build_parser().parse_args(["figure4", "--workers", "4"])
        assert args.workers == 4


class TestMain:
    def test_table1_small(self, capsys):
        assert main(["table1", "--small"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "bot-test" in out

    def test_table3_small(self, capsys):
        assert main(["table3", "--small"]) == 0
        assert "TP rate at /24" in capsys.readouterr().out

    def test_figure3_small_with_subsets(self, capsys):
        assert main(["figure3", "--small", "--subsets", "20"]) == 0
        assert "spatial uncleanliness" in capsys.readouterr().out

    def test_seed_override(self, capsys):
        assert main(["table1", "--small", "--seed", "99"]) == 0
        assert "Table 1" in capsys.readouterr().out


class TestScoreCommand:
    def test_score_to_stdout(self, tmp_path, capsys):
        import datetime

        from repro.core.report import DataClass, Report, ReportType
        from repro.io.reports import write_report

        report = Report.from_addresses(
            "bots",
            [f"62.4.9.{i}" for i in range(1, 30)],
            report_type=ReportType.PROVIDED,
            data_class=DataClass.BOTS,
        )
        path = tmp_path / "bots.txt"
        write_report(report, path)

        assert main(["score", "--reports", str(path), "--threshold", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "62.4.9.0/24" in out

    def test_score_to_file(self, tmp_path, capsys):
        from repro.core.report import Report
        from repro.io.reports import write_report

        write_report(
            Report.from_addresses("feed", [f"70.1.2.{i}" for i in range(1, 40)]),
            tmp_path / "feed.txt",
        )
        output = tmp_path / "blocklist.txt"
        code = main([
            "score", "--reports", str(tmp_path / "feed.txt"),
            "--threshold", "0.5", "--output", str(output),
        ])
        assert code == 0
        assert "70.1.2.0/24" in output.read_text()

    def test_score_without_reports_fails(self, capsys):
        assert main(["score"]) == 2

    def test_score_custom_prefix(self, tmp_path, capsys):
        from repro.core.report import Report
        from repro.io.reports import write_report

        write_report(
            Report.from_addresses("feed", [f"70.1.{i}.1" for i in range(40)]),
            tmp_path / "feed.txt",
        )
        assert main([
            "score", "--reports", str(tmp_path / "feed.txt"),
            "--threshold", "0.5", "--prefix", "16",
        ]) == 0
        assert "70.1.0.0/16" in capsys.readouterr().out


class TestValidateCommand:
    def test_validate_small_passes(self, capsys):
        assert main(["validate", "--small"]) == 0
        out = capsys.readouterr().out
        assert "placement_tracks_uncleanliness" in out
        assert "False" not in out


class TestCacheCommand:
    @pytest.fixture
    def private_store(self, tmp_path, monkeypatch):
        """Run cache commands against a throwaway store/dir."""
        from repro.engine import reset_default_store

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        reset_default_store()
        yield tmp_path / "cache"
        reset_default_store()

    def test_cache_info_default(self, private_store, capsys):
        assert main(["cache"]) == 0
        out = capsys.readouterr().out
        assert "Staged artifact cache" in out
        assert str(private_store) in out

    def test_cache_info_explicit(self, private_store, capsys):
        assert main(["cache", "info"]) == 0
        assert "disk files" in capsys.readouterr().out

    def test_cache_clear(self, private_store, capsys):
        from repro.engine import ReportMappingCodec, default_store
        from repro.core.report import Report

        default_store().put(
            "fp/reports",
            {"bot": Report.from_addresses("bot", ["8.8.8.8"])},
            ReportMappingCodec(),
        )
        assert main(["cache", "clear"]) == 0
        out = capsys.readouterr().out
        assert "cleared artifact cache (2 disk file(s) removed)" in out
        assert default_store().info()["disk_files"] == 0

    def test_cache_info_reports_flow_chunks(self, private_store, capsys):
        import numpy as np

        from repro.engine import default_store
        from repro.flows.chunked import ChunkedFlowLog
        from repro.flows.log import FlowLog

        n = 2000
        rng = np.random.default_rng(5)
        start = np.sort(rng.uniform(0.0, 86_400.0, n))
        flows = FlowLog(
            src_addr=rng.integers(0, 99, n, dtype=np.uint32),
            dst_addr=rng.integers(0, 99, n, dtype=np.uint32),
            src_port=np.full(n, 1024, dtype=np.uint16),
            dst_port=np.full(n, 80, dtype=np.uint16),
            protocol=np.full(n, 6, dtype=np.uint8),
            packets=np.ones(n, dtype=np.uint32),
            octets=np.full(n, 40, dtype=np.uint64),
            tcp_flags=np.full(n, 2, dtype=np.uint8),
            start_time=start,
            end_time=start + 1.0,
        )
        chunked = ChunkedFlowLog.spill(
            flows, "cli/w0", store=default_store(), max_flows=500
        )
        assert main(["cache", "info"]) == 0
        out = capsys.readouterr().out
        assert f"flow chunks:    {chunked.chunk_count} chunk(s)" in out

    def test_cache_unknown_action(self, private_store, capsys):
        assert main(["cache", "shrink"]) == 2
        assert "unknown cache action" in capsys.readouterr().err


class TestProfileCommand:
    def test_profile_report_file(self, tmp_path, capsys):
        from repro.core.report import Report
        from repro.io.reports import write_report

        write_report(
            Report.from_addresses(
                "feed", [f"70.1.{b}.{i}" for b in range(3) for i in range(1, 60)]
            ),
            tmp_path / "feed.txt",
        )
        assert main(["profile", "--reports", str(tmp_path / "feed.txt")]) == 0
        out = capsys.readouterr().out
        assert "177 addresses" in out
        assert "occupancy_entropy" in out

    def test_profile_without_reports_fails(self):
        assert main(["profile"]) == 2


class TestPacksCommand:
    def test_packs_lists_registry(self, capsys):
        from repro.scenarios import BUILTIN_PACK_NAMES

        assert main(["packs"]) == 0
        out = capsys.readouterr().out
        for name in BUILTIN_PACK_NAMES:
            assert name in out

    def test_pack_flag_on_scenario_verb(self, capsys):
        assert main(["table1", "--small", "--pack", "dhcp-churn"]) == 0
        assert "Table 1" in capsys.readouterr().out

    def test_pack_flag_changes_manifest_fingerprint(self, capsys):
        import argparse

        from repro.cli import _scenario_config

        base = argparse.Namespace(small=True, seed=None, pack=None)
        packed = argparse.Namespace(
            small=True, seed=None, pack="sinkhole-takedown"
        )
        assert (
            _scenario_config(base).fingerprint()
            != _scenario_config(packed).fingerprint()
        )

    def test_identity_pack_keeps_fingerprint(self):
        import argparse

        from repro.cli import _scenario_config

        base = argparse.Namespace(small=True, seed=None, pack=None)
        identity = argparse.Namespace(
            small=True, seed=None, pack="paper-default"
        )
        assert (
            _scenario_config(base).fingerprint()
            == _scenario_config(identity).fingerprint()
        )

    def test_unknown_pack_fails_cleanly(self, capsys):
        assert main(["table1", "--small", "--pack", "no-such-pack"]) == 2
        assert "no scenario pack" in capsys.readouterr().err
