"""The config-validation pass: every layer rejects bad values loudly.

One place asserting that each config surfaces a clear ``ValueError``
from ``validate()`` — and that ``ScenarioConfig.validate()`` sweeps its
sub-configs — instead of letting bad parameters die as numpy broadcast
errors deep inside generation.
"""

from dataclasses import replace

import pytest

from repro.core.scenario import ScenarioConfig
from repro.flows.generator import TrafficConfig
from repro.sim.asys import ASConfig
from repro.sim.botnet import BotnetConfig
from repro.sim.internet import InternetConfig


class TestInternetConfig:
    @pytest.mark.parametrize(
        "kwargs, match",
        [
            ({"num_slash16": 0}, "num_slash16"),
            ({"mean_occupancy": 0.0}, "mean_occupancy"),
            ({"mean_occupancy": 1.5}, "mean_occupancy"),
            ({"occupancy_sigma": -0.1}, "occupancy_sigma"),
            ({"uncleanliness_alpha": 0.0}, "beta parameters"),
            ({"uncleanliness_beta": -1.0}, "beta parameters"),
            ({"uncleanliness_noise": -0.1}, "uncleanliness_noise"),
            ({"hosting_fraction": 1.1}, "hosting_fraction"),
            ({"mean_hosts": 0.5}, "mean_hosts"),
            ({"observed_octet": 300}, "observed_octet"),
            ({"dynamic_fraction": -0.1}, "dynamic_fraction"),
            ({"dynamic_fraction": 1.5}, "dynamic_fraction"),
            ({"reassignment_fraction": 2.0}, "reassignment_fraction"),
        ],
    )
    def test_rejects_bad_values(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            InternetConfig(**kwargs).validate()

    def test_reassignment_requires_asys(self):
        with pytest.raises(ValueError, match="asys"):
            InternetConfig(
                reassignment_fraction=0.2, reassignment_day=100
            ).validate()

    def test_reassignment_requires_day(self):
        with pytest.raises(ValueError, match="reassignment_day"):
            InternetConfig(
                asys=ASConfig(), reassignment_fraction=0.2
            ).validate()

    def test_bad_asys_surfaces(self):
        with pytest.raises(ValueError, match="num_as"):
            InternetConfig(asys=ASConfig(num_as=0)).validate()

    def test_default_valid(self):
        InternetConfig().validate()


class TestBotnetConfig:
    @pytest.mark.parametrize(
        "kwargs, match",
        [
            ({"horizon_days": 0}, "horizon_days"),
            ({"daily_compromises": 0.0}, "daily_compromises"),
            ({"affinity": -1.0}, "affinity"),
            ({"base_duration_days": -1.0}, "duration parameters"),
            ({"duration_gain_days": -1.0}, "duration parameters"),
            ({"num_channels": 0}, "num_channels"),
            ({"scanner_fraction": 1.5}, "scanner_fraction"),
            ({"spammer_fraction": -0.1}, "spammer_fraction"),
            ({"evasion_strength": 2.0}, "evasion_strength"),
            ({"wave_amplitude": 1.0}, "wave_amplitude"),
            ({"wave_amplitude": -0.1}, "wave_amplitude"),
            ({"wave_period_days": 0.0}, "wave_period_days"),
            ({"rebind_days": -1.0}, "rebind_days"),
        ],
    )
    def test_rejects_bad_values(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            BotnetConfig(**kwargs).validate()

    def test_default_valid(self):
        BotnetConfig().validate()


class TestTrafficConfig:
    @pytest.mark.parametrize(
        "kwargs, match",
        [
            ({"num_servers": 0}, "num_servers"),
            ({"num_mail_servers": 0}, "num_mail_servers"),
            ({"suspicious_hosts": -1}, "suspicious_hosts"),
            ({"scan_participation": 1.5}, "scan_participation"),
            ({"slow_scanner_fraction": -0.1}, "slow_scanner_fraction"),
            ({"diurnal_amplitude": 1.0}, "diurnal_amplitude"),
            ({"diurnal_peak_hour": 24.0}, "diurnal_peak_hour"),
            ({"diurnal_peak_hour": -1.0}, "diurnal_peak_hour"),
        ],
    )
    def test_rejects_bad_values(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            TrafficConfig(**kwargs).validate()

    def test_default_valid(self):
        TrafficConfig().validate()


class TestScenarioConfigSweep:
    def test_sweeps_subconfigs(self):
        # A bad value *inside* a sub-config fails the top-level validate.
        config = replace(
            ScenarioConfig(), internet=InternetConfig(num_slash16=0)
        )
        with pytest.raises(ValueError, match="num_slash16"):
            config.validate()

    def test_bad_botnet_surfaces(self):
        config = replace(
            ScenarioConfig(), botnet=BotnetConfig(wave_amplitude=1.0)
        )
        with pytest.raises(ValueError, match="wave_amplitude"):
            config.validate()

    def test_stale_flood_needs_dark_day(self):
        with pytest.raises(ValueError, match="bot_feed_dark_from_day"):
            replace(ScenarioConfig(), bot_feed_stale_days=30).validate()

    def test_dark_day_within_horizon(self):
        with pytest.raises(ValueError, match="horizon"):
            replace(
                ScenarioConfig(), bot_feed_dark_from_day=100_000
            ).validate()

    def test_negative_stale_days(self):
        with pytest.raises(ValueError, match="bot_feed_stale_days"):
            replace(ScenarioConfig(), bot_feed_stale_days=-1).validate()

    def test_default_and_small_valid(self):
        ScenarioConfig().validate()
        ScenarioConfig.small().validate()
