"""Unit tests for the §6 blocking pipeline (repro.core.blocking)."""

import numpy as np
import pytest

from repro.core.blocking import (
    BLOCKING_PREFIXES,
    BlockingRow,
    CandidatePartition,
    blocking_test,
    partition_candidates,
)
from repro.core.report import Report
from repro.flows.log import FlowBatch, FlowLog
from repro.flows.record import Protocol, TCPFlags


def _flow_log(entries):
    """entries: (src, dst, proto, packets, octets, flags)."""
    batch = FlowBatch()
    for i, (src, dst, proto, packets, octets, flags) in enumerate(entries):
        batch.add(src, dst, 40000, 80, proto, packets, octets, flags, float(i))
    return FlowLog.from_batches([batch])


BASE = 0x0A010100  # 10.1.1.0/24 — the bot-test block
OTHER = 0x14010100  # 20.1.1.0/24 — unrelated space
SERVER = 0x1E000001

ACKED = TCPFlags.SYN | TCPFlags.ACK | TCPFlags.PSH
SYN_ONLY = TCPFlags.SYN


@pytest.fixture
def bot_test():
    return Report.from_addresses("bot-test", [BASE + 9])


@pytest.fixture
def flows():
    return _flow_log(
        [
            (BASE + 1, SERVER, Protocol.TCP, 10, 5000, ACKED),  # payload, reported
            (BASE + 2, SERVER, Protocol.TCP, 3, 156, SYN_ONLY),  # no payload
            (BASE + 3, SERVER, Protocol.TCP, 10, 5000, ACKED),  # payload, unreported
            (BASE + 4, SERVER, Protocol.UDP, 2, 200, 0),  # UDP only: not a candidate
            (OTHER + 1, SERVER, Protocol.TCP, 10, 5000, ACKED),  # outside blocks
        ]
    )


@pytest.fixture
def unclean():
    return Report.from_addresses("unclean", [BASE + 1, OTHER + 1])


class TestPartition:
    def test_candidate_requires_tcp_and_block(self, flows, bot_test, unclean):
        part = partition_candidates(flows, bot_test, unclean)
        assert sorted(part.candidate.addresses) == [BASE + 1, BASE + 2, BASE + 3]

    def test_hostile_is_reported(self, flows, bot_test, unclean):
        part = partition_candidates(flows, bot_test, unclean)
        assert list(part.hostile.addresses) == [BASE + 1]

    def test_unknown_has_no_payload(self, flows, bot_test, unclean):
        part = partition_candidates(flows, bot_test, unclean)
        assert list(part.unknown.addresses) == [BASE + 2]

    def test_innocent_has_payload_but_unreported(self, flows, bot_test, unclean):
        part = partition_candidates(flows, bot_test, unclean)
        assert list(part.innocent.addresses) == [BASE + 3]

    def test_partition_covers_candidates(self, flows, bot_test, unclean):
        part = partition_candidates(flows, bot_test, unclean)
        assert len(part.hostile) + len(part.unknown) + len(part.innocent) == len(
            part.candidate
        )

    def test_hostile_wins_over_behaviour(self, bot_test):
        # "once an IP address is identified as hostile it cannot be
        # present in the remaining two reports" — even without payload.
        flows = _flow_log([(BASE + 7, SERVER, Protocol.TCP, 3, 156, SYN_ONLY)])
        unclean = Report.from_addresses("unclean", [BASE + 7])
        part = partition_candidates(flows, bot_test, unclean)
        assert list(part.hostile.addresses) == [BASE + 7]
        assert len(part.unknown) == 0

    def test_inconsistent_partition_rejected(self):
        candidate = Report.from_addresses("candidate", [BASE + 1, BASE + 2])
        hostile = Report.from_addresses("hostile", [BASE + 1])
        empty = Report.from_addresses("x", [])
        with pytest.raises(ValueError):
            CandidatePartition(
                candidate=candidate, hostile=hostile, unknown=empty, innocent=empty
            )

    def test_table2_rows(self, flows, bot_test, unclean):
        rows = partition_candidates(flows, bot_test, unclean).table2_rows()
        assert [row["tag"] for row in rows] == [
            "candidate",
            "hostile",
            "unknown",
            "innocent",
        ]


class TestBlockingTest:
    def test_prefix_band(self):
        assert BLOCKING_PREFIXES == tuple(range(24, 33))

    def test_counts_per_prefix(self, flows, bot_test, unclean):
        part = partition_candidates(flows, bot_test, unclean)
        result = blocking_test(part, bot_test)
        row24 = result.row(24)
        assert row24.true_positives == 1
        assert row24.false_positives == 1
        assert row24.population == 2
        assert row24.unknown == 1

    def test_slash32_blocks_only_exact_addresses(self, flows, bot_test, unclean):
        part = partition_candidates(flows, bot_test, unclean)
        row32 = blocking_test(part, bot_test).row(32)
        # bot-test contains only BASE+9, which never crossed, so nothing
        # is caught at /32.
        assert row32.population == 0
        assert row32.unknown == 0

    def test_monotone_decreasing(self, flows, bot_test, unclean):
        part = partition_candidates(flows, bot_test, unclean)
        assert blocking_test(part, bot_test).monotone_decreasing()

    def test_rates(self):
        row = BlockingRow(
            prefix=24, true_positives=9, false_positives=1, population=10, unknown=10
        )
        assert row.tp_rate == 0.9
        assert row.fp_rate == 0.1
        assert row.tp_rate_assuming_unknown_hostile == 0.95

    def test_rates_empty_population(self):
        row = BlockingRow(
            prefix=32, true_positives=0, false_positives=0, population=0, unknown=0
        )
        assert row.tp_rate == 0.0
        assert row.fp_rate == 0.0
        assert row.tp_rate_assuming_unknown_hostile == 0.0

    def test_missing_row_raises(self, flows, bot_test, unclean):
        part = partition_candidates(flows, bot_test, unclean)
        result = blocking_test(part, bot_test)
        with pytest.raises(KeyError):
            result.row(16)

    def test_roc_points(self, flows, bot_test, unclean):
        part = partition_candidates(flows, bot_test, unclean)
        points = blocking_test(part, bot_test).roc_points()
        assert len(points) == len(BLOCKING_PREFIXES)
        assert all(0 <= p["tp_rate"] <= 1 for p in points)


class TestPartitionPeriod:
    def test_partition_reports_carry_observation_period(self, flows, bot_test):
        """Table 2's observed reports cover the traffic window, not the
        old bot report's date."""
        import datetime

        period = (datetime.date(2006, 10, 1), datetime.date(2006, 10, 14))
        unclean = Report.from_addresses("unclean", [BASE + 1], period=period)
        part = partition_candidates(flows, bot_test, unclean)
        assert part.candidate.period == period
        assert part.hostile.period == period
        assert part.unknown.period == period
        assert part.innocent.period == period


class TestControlBlockingDistribution:
    @pytest.fixture
    def control(self):
        rng = np.random.default_rng(0xB10C)
        return Report.from_addresses(
            "control",
            np.unique(rng.integers(0, 2**32, size=3000, dtype=np.uint32)),
        )

    def test_null_model_summaries(self, flows, bot_test, unclean, control):
        from repro.core.blocking import control_blocking_distribution

        part = partition_candidates(flows, bot_test, unclean)
        dist = control_blocking_distribution(
            part, bot_test, control, np.random.default_rng(4),
            prefixes=(24, 28, 32), subsets=20,
        )
        assert set(dist) == {"hostile", "innocent"}
        for summaries in dist.values():
            assert set(summaries) == {24, 28, 32}
            for summary in summaries.values():
                # A covered count can never exceed the target cardinality.
                assert 0 <= summary.minimum <= summary.maximum <= len(part.candidate)

    def test_observed_blocks_beat_random_controls(self, flows, bot_test, unclean, control):
        """The §6 point: the real bot-test blocks catch far more hostile
        candidates than equal-cardinality random subsets do."""
        from repro.core.blocking import control_blocking_distribution

        part = partition_candidates(flows, bot_test, unclean)
        observed_tp = blocking_test(part, bot_test, prefixes=(24,)).row(24).true_positives
        dist = control_blocking_distribution(
            part, bot_test, control, np.random.default_rng(4),
            prefixes=(24,), subsets=20,
        )
        assert observed_tp >= dist["hostile"][24].median

    def test_matrix_matches_per_trial_reference(self, flows, bot_test, unclean, control):
        from repro.core.blocking import (
            CoveredCountStatistic,
            monte_carlo_covered_counts,
        )
        from repro.core.sampling import monte_carlo

        part = partition_candidates(flows, bot_test, unclean)
        prefixes = (24, 32)
        batched = monte_carlo_covered_counts(
            part.hostile, control, len(bot_test), 15,
            np.random.default_rng(8), prefixes,
        )
        statistic = CoveredCountStatistic.for_report(part.hostile, prefixes)
        reference = monte_carlo(
            control, len(bot_test), 15, np.random.default_rng(8),
            statistic=statistic.per_trial,
        )
        assert np.array_equal(batched, reference)
