"""Unit tests for the operational blocklist (repro.core.blocklist)."""

import numpy as np
import pytest

from repro.core.blocklist import Blocklist, BlocklistEntry
from repro.core.report import Report
from repro.core.uncleanliness import UncleanlinessScorer
from repro.ipspace.addr import as_int
from repro.ipspace.cidr import CIDRBlock

BLOCK = CIDRBlock.parse("62.4.9.0/24")
OTHER = CIDRBlock.parse("62.4.10.0/24")


class TestConstruction:
    def test_defaults(self):
        bl = Blocklist()
        assert bl.prefix_len == 24
        assert len(bl) == 0

    def test_invalid_prefix(self):
        with pytest.raises(ValueError):
            Blocklist(prefix_len=33)

    def test_invalid_ttl(self):
        with pytest.raises(ValueError):
            Blocklist(default_ttl_days=0)


class TestAddAndQuery:
    def test_add_and_contains(self):
        bl = Blocklist()
        bl.add_block(BLOCK, day=10)
        assert bl.is_blocked("62.4.9.200", day=10)
        assert not bl.is_blocked("62.4.10.1", day=10)

    def test_granularity_enforced(self):
        bl = Blocklist(prefix_len=24)
        with pytest.raises(ValueError):
            bl.add_block(CIDRBlock.parse("62.4.0.0/16"), day=0)

    def test_score_bounds_enforced(self):
        bl = Blocklist()
        with pytest.raises(ValueError):
            bl.add_block(BLOCK, day=0, score=1.5)

    def test_ttl_expiry(self):
        bl = Blocklist(default_ttl_days=5)
        bl.add_block(BLOCK, day=10)
        assert bl.is_blocked("62.4.9.1", day=14)
        assert not bl.is_blocked("62.4.9.1", day=15)

    def test_custom_ttl(self):
        bl = Blocklist(default_ttl_days=5)
        bl.add_block(BLOCK, day=10, ttl_days=100)
        assert bl.is_blocked("62.4.9.1", day=100)

    def test_refresh_extends_ttl(self):
        bl = Blocklist(default_ttl_days=5)
        bl.add_block(BLOCK, day=0)
        bl.add_block(BLOCK, day=4)
        assert bl.is_blocked("62.4.9.1", day=8)
        assert len(bl) == 1

    def test_refresh_accumulates_score(self):
        bl = Blocklist(score_half_life_days=1e9)  # no decay
        bl.add_block(BLOCK, day=0, score=0.5)
        entry = bl.add_block(BLOCK, day=1, score=0.5)
        assert entry.score == pytest.approx(0.75)

    def test_relisting_after_expiry_resets(self):
        bl = Blocklist(default_ttl_days=5)
        bl.add_block(BLOCK, day=0, score=0.9)
        entry = bl.add_block(BLOCK, day=100, score=0.2)
        assert entry.score == pytest.approx(0.2)
        assert entry.added_day == 100

    def test_remove(self):
        bl = Blocklist()
        bl.add_block(BLOCK, day=0)
        assert bl.remove(BLOCK)
        assert not bl.remove(BLOCK)
        assert not bl.is_blocked("62.4.9.1", day=0)

    def test_prune(self):
        bl = Blocklist(default_ttl_days=5)
        bl.add_block(BLOCK, day=0)
        bl.add_block(OTHER, day=10)
        assert bl.prune(day=8) == 1
        assert len(bl) == 1

    def test_entries_sorted_and_filtered(self):
        bl = Blocklist(default_ttl_days=5)
        bl.add_block(OTHER, day=0)
        bl.add_block(BLOCK, day=10)
        assert [e.block for e in bl.entries()] == [BLOCK, OTHER]
        assert [e.block for e in bl.entries(day=12)] == [BLOCK]


class TestDecay:
    def test_decayed_score_half_life(self):
        entry = BlocklistEntry(
            block=BLOCK, added_day=0, last_seen_day=0, expiry_day=100, score=0.8
        )
        assert entry.decayed_score(0, half_life_days=10) == pytest.approx(0.8)
        assert entry.decayed_score(10, half_life_days=10) == pytest.approx(0.4)
        assert entry.decayed_score(20, half_life_days=10) == pytest.approx(0.2)

    def test_no_decay_with_nonpositive_half_life(self):
        entry = BlocklistEntry(
            block=BLOCK, added_day=0, last_seen_day=0, expiry_day=100, score=0.8
        )
        assert entry.decayed_score(50, half_life_days=0) == 0.8

    def test_score_of_decays(self):
        bl = Blocklist(default_ttl_days=100, score_half_life_days=10)
        bl.add_block(BLOCK, day=0, score=0.8)
        assert bl.score_of("62.4.9.1", day=0) == pytest.approx(0.8)
        assert bl.score_of("62.4.9.1", day=10) == pytest.approx(0.4)

    def test_score_of_unlisted_is_zero(self):
        bl = Blocklist()
        assert bl.score_of("62.4.9.1", day=0) == 0.0


class TestBulkOperations:
    def test_add_report(self):
        bl = Blocklist()
        report = Report.from_addresses("r", ["62.4.9.1", "62.4.9.2", "62.4.10.1"])
        assert bl.add_report(report, day=0) == 2
        assert len(bl) == 2

    def test_add_scores_threshold(self):
        reports = {
            "bots": Report.from_addresses("b", [f"62.4.9.{i}" for i in range(1, 30)]),
            "scanning": Report.from_addresses("s", ["62.4.10.1"]),
        }
        scores = UncleanlinessScorer(prefix_len=24).score(reports)
        bl = Blocklist()
        listed = bl.add_scores(scores, day=0, threshold=0.9)
        assert listed == 1  # only the 29-bot block clears 0.9
        assert bl.is_blocked("62.4.9.200", day=0)
        assert not bl.is_blocked("62.4.10.1", day=0)

    def test_add_scores_granularity_mismatch(self):
        scores = UncleanlinessScorer(prefix_len=16).score(
            {"bots": Report.from_addresses("b", ["62.4.9.1"])}
        )
        with pytest.raises(ValueError):
            Blocklist(prefix_len=24).add_scores(scores, day=0, threshold=0.0)

    def test_blocked_mask_and_coverage(self):
        bl = Blocklist()
        bl.add_block(BLOCK, day=0)
        report = Report.from_addresses(
            "r", ["62.4.9.1", "62.4.9.2", "62.4.10.1", "8.8.8.8"]
        )
        mask = bl.blocked_mask(report.addresses, day=0)
        assert mask.sum() == 2
        assert bl.coverage(report, day=0) == pytest.approx(0.5)

    def test_coverage_empty_report(self):
        bl = Blocklist()
        assert bl.coverage(Report.from_addresses("e", []), day=0) == 0.0

    def test_active_networks_sorted(self):
        bl = Blocklist()
        bl.add_block(OTHER, day=0)
        bl.add_block(BLOCK, day=0)
        nets = bl.active_networks(day=0)
        assert list(nets) == sorted([BLOCK.network, OTHER.network])


class TestScenarioIntegration:
    def test_blocklist_from_scenario_catches_future_bots(self, small_scenario):
        """End-to-end: October evidence listed with a long TTL still
        covers November's bot population (temporal uncleanliness)."""
        from repro.sim.timeline import Window, date_to_day
        import datetime

        bl = Blocklist(default_ttl_days=60)
        oct_day = date_to_day(datetime.date(2006, 10, 14))
        bl.add_report(small_scenario.bot, day=oct_day)

        november = Window.from_dates(
            datetime.date(2006, 11, 1), datetime.date(2006, 11, 28)
        )
        future_bots = small_scenario.botnet.active_addresses(november)
        nov_day = november.start_day
        coverage = bl.blocked_mask(future_bots, nov_day).mean()
        # Well above the ~2% a random equal-sized /24 list achieves.
        assert coverage > 0.25
