"""Unit tests for repro.core.cidr (report-level CIDR operations)."""

import warnings

import numpy as np
import pytest

from repro.core import cidr as rcidr
from repro.core.report import Report
from repro.ipspace import cidr as icidr
from repro.ipspace.addr import as_int
from repro.ipspace.cidr import CIDRBlock


def report(tag, addrs):
    return Report.from_addresses(tag, addrs)


class TestPrefixRange:
    def test_paper_band(self):
        # §4.1: block sizes limited to between 16 and 32 bits.
        assert list(rcidr.PREFIX_RANGE) == list(range(16, 33))


class TestCidrSet:
    def test_counts(self):
        r = report("r", ["10.1.1.1", "10.1.1.2", "10.1.2.1", "10.2.0.1"])
        assert icidr.block_count(r, 24) == 3
        assert icidr.block_count(r, 16) == 2
        assert icidr.block_count(r, 32) == 4

    def test_block_counts_dict(self):
        r = report("r", ["10.1.1.1", "10.2.1.1"])
        counts = rcidr.block_counts(r, prefixes=(16, 24))
        assert counts == {16: 2, 24: 2}

    def test_cidr_blocks_objects(self):
        r = report("r", ["10.1.1.1"])
        blocks = rcidr.cidr_blocks(r, 24)
        assert blocks == [CIDRBlock.parse("10.1.1.0/24")]

    def test_monotone_in_prefix(self):
        # |C_n(S)| is non-decreasing in n.
        addrs = [f"10.{i}.{j}.{k}" for i in range(3) for j in range(4) for k in (1, 2)]
        r = report("r", addrs)
        previous = 0
        for n in rcidr.PREFIX_RANGE:
            count = icidr.block_count(r, n)
            assert count >= previous
            previous = count


class TestDeprecatedBlockCount:
    def test_shim_delegates_and_warns_once(self):
        r = report("r", ["10.1.1.1", "10.1.1.2", "10.2.0.1"])
        rcidr._WARNED.discard("block_count")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            first = rcidr.block_count(r, 24)
            second = rcidr.block_count(r, 16)
        assert first == icidr.block_count(r, 24)
        assert second == icidr.block_count(r, 16)
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
        assert "repro.ipspace.cidr.block_count" in str(deprecations[0].message)


class TestIntersection:
    def test_intersection_count(self):
        past = report("past", ["10.1.1.1", "10.2.1.1"])
        present = report("present", ["10.1.1.200", "10.3.0.1"])
        assert rcidr.intersection_count(past, present, 24) == 1
        assert rcidr.intersection_count(past, present, 32) == 0
        assert rcidr.intersection_count(past, present, 8) == 1

    def test_intersection_counts_dict(self):
        past = report("past", ["10.1.1.1"])
        present = report("present", ["10.1.1.2"])
        counts = rcidr.intersection_counts(past, present, prefixes=(24, 32))
        assert counts == {24: 1, 32: 0}

    def test_self_intersection_is_block_count(self):
        r = report("r", ["10.1.1.1", "10.2.1.1", "11.0.0.1"])
        for n in (16, 24, 32):
            assert rcidr.intersection_count(r, r, n) == icidr.block_count(r, n)

    def test_empty_reports(self):
        empty = report("e", [])
        other = report("o", ["10.0.0.1"])
        assert rcidr.intersection_count(empty, other, 24) == 0


class TestMembersOf:
    def test_candidate_extraction(self):
        # §6.1: addresses of `candidate` sharing a /24 with bot-test.
        covering = report("bot-test", ["10.9.9.9"])
        traffic = report(
            "crossers", ["10.9.9.1", "10.9.9.254", "10.9.8.1", "99.0.0.1"]
        )
        members = rcidr.members_of(traffic, covering, 24)
        assert sorted(members.addresses) == sorted(
            [as_int("10.9.9.1"), as_int("10.9.9.254")]
        )

    def test_members_preserve_metadata(self):
        covering = report("c", ["10.9.9.9"])
        traffic = report("t", ["10.9.9.1"])
        members = rcidr.members_of(traffic, covering, 24)
        assert members.report_type == traffic.report_type
        assert "t@c/24" == members.tag

    def test_addresses_in_blocks(self):
        r = report("r", ["10.0.0.1", "20.0.0.1"])
        blocks = rcidr.cidr_set(report("s", ["10.0.0.200"]), 24)
        inside = rcidr.addresses_in_blocks(r, blocks, 24)
        assert list(inside) == [as_int("10.0.0.1")]
