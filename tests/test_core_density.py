"""Unit tests for the spatial uncleanliness test (repro.core.density)."""

import numpy as np
import pytest

from repro.core.density import (
    DensityResult,
    control_density_distribution,
    density_curve,
    density_test,
    naive_density_distribution,
)
from repro.core.report import Report


def clustered_report(tag="clustered", blocks=4, per_block=50):
    """Addresses packed into a few /24s (an 'unclean' shape)."""
    addrs = [f"66.10.{b}.{k}" for b in range(blocks) for k in range(1, per_block + 1)]
    return Report.from_addresses(tag, addrs)


def scattered_control(tag="control", count=2000, rng=None):
    """Addresses spread over many /24s (a 'control' shape)."""
    rng = rng or np.random.default_rng(0)
    octets = rng.integers(60, 200, size=count)
    addrs = (
        (octets.astype(np.uint32) << 24)
        | (rng.integers(0, 2**24, size=count, dtype=np.uint32))
    )
    return Report.from_addresses(tag, addrs)


class TestDensityCurve:
    def test_counts(self):
        r = clustered_report(blocks=3, per_block=10)
        curve = density_curve(r, prefixes=(16, 24, 32))
        assert curve == {16: 1, 24: 3, 32: 30}


class TestDistributions:
    def test_control_distribution_shape(self, rng):
        control = scattered_control()
        dist = control_density_distribution(control, 100, (16, 24), 15, rng)
        assert set(dist) == {16, 24}
        assert all(v.shape == (15,) for v in dist.values())

    def test_naive_distribution_shape(self, rng):
        dist = naive_density_distribution(100, (16, 24), 5, rng)
        assert all(v.shape == (5,) for v in dist.values())

    def test_control_counts_bounded_by_size(self, rng):
        control = scattered_control()
        dist = control_density_distribution(control, 100, (24,), 10, rng)
        assert (dist[24] <= 100).all()
        assert (dist[24] >= 1).all()


class TestDensityTest:
    def test_clustered_beats_scattered(self, rng):
        result = density_test(
            clustered_report(),
            scattered_control(),
            rng,
            prefixes=range(16, 33),
            subsets=50,
        )
        assert result.hypothesis_holds()

    def test_scattered_report_fails(self, rng):
        # A random subset of control is NOT denser than control.
        control = scattered_control(count=4000)
        not_unclean = control.sample(200, rng, tag="random")
        result = density_test(
            not_unclean, control, rng, prefixes=(20, 24), subsets=50
        )
        # With ~200 scattered addresses the observed counts sit inside the
        # control distribution, not below all of it.
        assert not all(
            result.observed[n] < result.control[n].q05 for n in (20, 24)
        )

    def test_density_ratio(self, rng):
        result = density_test(
            clustered_report(), scattered_control(), rng, prefixes=(24,), subsets=20
        )
        assert result.density_ratio(24) > 5  # 4 blocks vs ~200

    def test_rows_structure(self, rng):
        result = density_test(
            clustered_report(), scattered_control(), rng, prefixes=(24,), subsets=10
        )
        (row,) = result.rows()
        assert row["prefix"] == 24
        assert row["denser"] is True
        assert "naive_median" not in row

    def test_naive_included_when_requested(self, rng):
        result = density_test(
            clustered_report(),
            scattered_control(),
            rng,
            prefixes=(24,),
            subsets=10,
            include_naive=True,
            naive_subsets=5,
        )
        assert result.naive is not None
        assert result.rows()[0]["naive_median"] > 0

    def test_empty_report_rejected(self, rng):
        with pytest.raises(ValueError):
            density_test(
                Report.from_addresses("empty", []), scattered_control(), rng
            )

    def test_control_smaller_than_report_rejected(self, rng):
        big = clustered_report(blocks=8, per_block=100)
        small_control = scattered_control(count=10)
        with pytest.raises(ValueError):
            density_test(big, small_control, rng)

    def test_deterministic_given_seed(self):
        result1 = density_test(
            clustered_report(), scattered_control(), np.random.default_rng(1),
            prefixes=(20, 24), subsets=10,
        )
        result2 = density_test(
            clustered_report(), scattered_control(), np.random.default_rng(1),
            prefixes=(20, 24), subsets=10,
        )
        assert result1.control[24].median == result2.control[24].median
