"""Unit tests for the temporal uncleanliness test (repro.core.prediction)."""

import numpy as np
import pytest

from repro.core.prediction import BETTER_PREDICTOR_LEVEL, prediction_test
from repro.core.report import Report


def persistent_networks(tag, blocks, offset, count_per_block=5):
    """Addresses in fixed /24s (persistently unclean space)."""
    addrs = [
        f"77.1.{b}.{offset + k}" for b in range(blocks) for k in range(count_per_block)
    ]
    return Report.from_addresses(tag, addrs)


def wide_control(count=5000, seed=0):
    rng = np.random.default_rng(seed)
    octets = rng.integers(60, 200, size=count)
    addrs = (octets.astype(np.uint32) << 24) | rng.integers(
        0, 2**24, size=count, dtype=np.uint32
    )
    return Report.from_addresses("control", addrs)


class TestPredictionTest:
    def test_persistent_past_predicts_present(self, rng):
        past = persistent_networks("past", blocks=20, offset=1)
        present = persistent_networks("present", blocks=20, offset=100)
        result = prediction_test(
            past, present, wide_control(), rng, prefixes=(24,), subsets=50
        )
        assert result.better_predictor(24)
        assert result.hypothesis_holds()
        assert result.observed[24] == 20

    def test_unrelated_past_does_not_predict(self, rng):
        past = persistent_networks("past", blocks=20, offset=1)
        # Present activity in entirely different space.
        present = Report.from_addresses(
            "present", [f"150.2.{b}.7" for b in range(20)]
        )
        result = prediction_test(
            past, present, wide_control(), rng, prefixes=(24,), subsets=50
        )
        assert result.observed[24] == 0
        assert not result.better_predictor(24)

    def test_exceedance_in_unit_interval(self, rng):
        past = persistent_networks("past", blocks=5, offset=1)
        present = persistent_networks("present", blocks=5, offset=50)
        result = prediction_test(
            past, present, wide_control(), rng, prefixes=(16, 24), subsets=20
        )
        for value in result.exceedance.values():
            assert 0.0 <= value <= 1.0

    def test_predictive_range(self, rng):
        past = persistent_networks("past", blocks=20, offset=1)
        present = persistent_networks("present", blocks=20, offset=100)
        result = prediction_test(
            past, present, wide_control(), rng, prefixes=(22, 23, 24), subsets=50
        )
        assert result.predictive_range() == (22, 24)
        assert result.predictive_prefixes() == [22, 23, 24]

    def test_no_predictive_range_when_nothing_wins(self, rng):
        past = persistent_networks("past", blocks=3, offset=1)
        present = Report.from_addresses("present", ["150.0.0.1"])
        result = prediction_test(
            past, present, wide_control(), rng, prefixes=(24,), subsets=20
        )
        assert result.predictive_range() is None

    def test_custom_level(self, rng):
        past = persistent_networks("past", blocks=20, offset=1)
        present = persistent_networks("present", blocks=20, offset=100)
        result = prediction_test(
            past, present, wide_control(), rng, prefixes=(24,), subsets=50
        )
        # A lax level can only widen the predictive set.
        assert set(result.predictive_prefixes(level=0.5)) >= set(
            result.predictive_prefixes(level=BETTER_PREDICTOR_LEVEL)
        )

    def test_rows_structure(self, rng):
        past = persistent_networks("past", blocks=4, offset=1)
        present = persistent_networks("present", blocks=4, offset=60)
        result = prediction_test(
            past, present, wide_control(), rng, prefixes=(24,), subsets=10
        )
        (row,) = result.rows()
        assert set(row) == {
            "prefix",
            "observed_intersection",
            "control_median",
            "control_q95",
            "exceedance",
            "better_predictor",
        }

    def test_empty_past_rejected(self, rng):
        with pytest.raises(ValueError):
            prediction_test(
                Report.from_addresses("e", []),
                persistent_networks("p", 2, 1),
                wide_control(),
                rng,
            )

    def test_small_control_rejected(self, rng):
        with pytest.raises(ValueError):
            prediction_test(
                persistent_networks("past", 20, 1),
                persistent_networks("present", 20, 100),
                Report.from_addresses("control", ["1.0.0.1"]),
                rng,
            )

    def test_equal_cardinality_subsets_used(self, rng):
        # Eq. 5 requires |R_normal-past| == |R_unclean-past|; control
        # intersections can therefore never exceed the past report size.
        past = persistent_networks("past", blocks=10, offset=1)
        present = persistent_networks("present", blocks=10, offset=100)
        result = prediction_test(
            past, present, wide_control(), rng, prefixes=(16,), subsets=30
        )
        assert result.control[16].maximum <= len(past)
