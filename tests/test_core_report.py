"""Unit tests for repro.core.report."""

import datetime

import numpy as np
import pytest

from repro.core.report import DataClass, Report, ReportType
from repro.ipspace.addr import as_int


def make(tag="t", addrs=("1.0.0.1", "2.0.0.2"), **kwargs):
    return Report.from_addresses(tag, addrs, **kwargs)


class TestConstruction:
    def test_sorted_and_deduped(self):
        report = make(addrs=["9.0.0.9", "1.0.0.1", "9.0.0.9"])
        assert list(report.addresses) == sorted(
            {as_int("9.0.0.9"), as_int("1.0.0.1")}
        )

    def test_len(self):
        assert len(make(addrs=["1.0.0.1", "1.0.0.1", "2.0.0.2"])) == 2

    def test_empty_report_allowed(self):
        assert len(make(addrs=[])) == 0

    def test_addresses_read_only(self):
        report = make()
        with pytest.raises(ValueError):
            report.addresses[0] = 0

    def test_invalid_type_rejected(self):
        with pytest.raises(ValueError):
            make(report_type="rumour")

    def test_invalid_class_rejected(self):
        with pytest.raises(ValueError):
            make(data_class="gossip")

    def test_reversed_period_rejected(self):
        with pytest.raises(ValueError):
            make(period=(datetime.date(2006, 10, 14), datetime.date(2006, 10, 1)))

    def test_metadata_defaults(self):
        report = make()
        assert report.report_type == ReportType.OBSERVED
        assert report.data_class == DataClass.NONE
        assert report.period is None


class TestMembership:
    def test_contains(self):
        report = make(addrs=["5.5.5.5", "6.6.6.6"])
        assert "5.5.5.5" in report
        assert as_int("6.6.6.6") in report
        assert "7.7.7.7" not in report

    def test_contains_empty(self):
        assert "1.2.3.4" not in make(addrs=[])

    def test_iter_yields_ints(self):
        report = make(addrs=["1.0.0.1"])
        assert list(report) == [as_int("1.0.0.1")]


class TestAlgebra:
    def test_union(self):
        a = make("a", ["1.0.0.1", "2.0.0.2"])
        b = make("b", ["2.0.0.2", "3.0.0.3"])
        assert len(a | b) == 3

    def test_intersection(self):
        a = make("a", ["1.0.0.1", "2.0.0.2"])
        b = make("b", ["2.0.0.2", "3.0.0.3"])
        both = a & b
        assert list(both.addresses) == [as_int("2.0.0.2")]
        assert both.tag == "a&b"

    def test_difference(self):
        a = make("a", ["1.0.0.1", "2.0.0.2"])
        b = make("b", ["2.0.0.2"])
        assert list((a - b).addresses) == [as_int("1.0.0.1")]

    def test_algebra_preserves_metadata(self):
        period = (datetime.date(2006, 10, 1), datetime.date(2006, 10, 14))
        a = make("a", ["1.0.0.1"], data_class=DataClass.BOTS, period=period)
        b = make("b", ["2.0.0.2"])
        merged = a.union(b, tag="merged")
        assert merged.tag == "merged"
        assert merged.data_class == DataClass.BOTS
        assert merged.period == period

    def test_disjoint_intersection_empty(self):
        a = make("a", ["1.0.0.1"])
        b = make("b", ["2.0.0.2"])
        assert len(a & b) == 0


class TestEquality:
    def test_equal_reports(self):
        assert make() == make()

    def test_tag_matters(self):
        assert make(tag="x") != make(tag="y")

    def test_hashable(self):
        assert len({make(), make()}) == 1

    def test_not_equal_to_other_types(self):
        assert make() != "report"


class TestSample:
    def test_sample_size(self, rng):
        report = make(addrs=[f"10.0.{i}.{j}" for i in range(4) for j in range(1, 50)])
        sample = report.sample(20, rng)
        assert len(sample) == 20

    def test_sample_is_subset(self, rng):
        report = make(addrs=[f"10.0.0.{j}" for j in range(1, 100)])
        sample = report.sample(30, rng)
        assert all(a in report for a in sample)

    def test_sample_whole_report(self, rng):
        report = make(addrs=["1.0.0.1", "2.0.0.2"])
        assert len(report.sample(2, rng)) == 2

    def test_oversample_rejected(self, rng):
        with pytest.raises(ValueError):
            make().sample(10, rng)

    def test_sample_deterministic_under_seed(self):
        report = make(addrs=[f"10.0.0.{j}" for j in range(1, 200)])
        s1 = report.sample(50, np.random.default_rng(5))
        s2 = report.sample(50, np.random.default_rng(5))
        assert np.array_equal(s1.addresses, s2.addresses)


class TestTransforms:
    def test_without_reserved(self):
        report = make(addrs=["192.168.1.1", "8.8.8.8", "10.0.0.1"])
        clean = report.without_reserved()
        assert list(clean.addresses) == [as_int("8.8.8.8")]

    def test_filtered_mask_shape_checked(self):
        report = make()
        with pytest.raises(ValueError):
            report.filtered(np.asarray([True]))

    def test_retagged(self):
        report = make(tag="old").retagged("new")
        assert report.tag == "new"

    def test_summary_row(self):
        period = (datetime.date(2006, 5, 1), datetime.date(2006, 11, 1))
        report = make(
            "phish",
            ["1.0.0.1"],
            report_type=ReportType.PROVIDED,
            data_class=DataClass.PHISHING,
            period=period,
        )
        row = report.summary_row()
        assert row == {
            "tag": "phish",
            "type": "provided",
            "class": "phishing",
            "valid_dates": "2006-05-01-2006-11-01",
            "size": 1,
        }

    def test_head(self):
        report = make(addrs=["2.0.0.2", "1.0.0.1"])
        assert report.head(1) == ["1.0.0.1"]
