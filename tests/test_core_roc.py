"""Unit tests for ROC analysis (repro.core.roc)."""

import numpy as np
import pytest

from repro.core.roc import ROCCurve, auc, roc_curve


class TestROCCurve:
    def test_perfect_classifier(self):
        curve = roc_curve([0.9, 0.8, 0.2, 0.1], [True, True, False, False])
        assert curve.auc() == pytest.approx(1.0)

    def test_inverted_classifier(self):
        curve = roc_curve([0.1, 0.2, 0.8, 0.9], [True, True, False, False])
        assert curve.auc() == pytest.approx(0.0)

    def test_random_classifier_half_auc(self, rng):
        scores = rng.random(4000)
        labels = rng.random(4000) < 0.5
        assert abs(auc(scores, labels) - 0.5) < 0.05

    def test_anchors_present(self):
        curve = roc_curve([0.9, 0.1], [True, False])
        assert curve.tpr[0] == 0.0 and curve.fpr[0] == 0.0
        assert curve.tpr[-1] == 1.0 and curve.fpr[-1] == 1.0

    def test_monotone_rates(self, rng):
        scores = rng.random(500)
        labels = rng.random(500) < 0.3
        curve = roc_curve(scores, labels)
        assert (np.diff(curve.tpr) >= 0).all()
        assert (np.diff(curve.fpr) >= 0).all()

    def test_tied_scores_collapse_to_one_point(self):
        curve = roc_curve([0.5, 0.5, 0.5, 0.5], [True, False, True, False])
        # anchor + single threshold point
        assert curve.thresholds.size == 2
        assert curve.tpr[-1] == 1.0 and curve.fpr[-1] == 1.0

    def test_operating_point(self):
        curve = roc_curve([0.9, 0.6, 0.3], [True, True, False])
        point = curve.operating_point(0.6)
        assert point["tpr"] == pytest.approx(1.0)
        assert point["fpr"] == pytest.approx(0.0)

    def test_operating_point_above_all_scores(self):
        curve = roc_curve([0.9, 0.1], [True, False])
        point = curve.operating_point(2.0)
        assert point["tpr"] == 0.0 and point["fpr"] == 0.0

    def test_best_youden(self):
        curve = roc_curve([0.9, 0.8, 0.7, 0.2], [True, True, False, False])
        best = curve.best_youden()
        assert best["youden_j"] == pytest.approx(1.0)
        assert best["threshold"] == pytest.approx(0.8)

    def test_rows(self):
        rows = roc_curve([0.9, 0.1], [True, False]).rows()
        assert rows[0]["tpr"] == 0.0
        assert rows[-1]["tpr"] == 1.0


class TestValidation:
    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            roc_curve([0.1, 0.2], [True])

    def test_single_class_rejected(self):
        with pytest.raises(ValueError):
            roc_curve([0.1, 0.2], [True, True])
        with pytest.raises(ValueError):
            roc_curve([0.1, 0.2], [False, False])


class TestScenarioROC:
    def test_scored_blocking_beats_chance(self, small_scenario):
        """Score §6 candidates with the uncleanliness metric built from
        the *bot-test* report alone; hostile candidates must rank above
        innocent ones (AUC well over 0.5)."""
        from repro.core.uncleanliness import UncleanlinessScorer

        part = small_scenario.partition
        scorer = UncleanlinessScorer(prefix_len=24, weights={"bots": 1.0})
        scores = scorer.score({"bots": small_scenario.bot_test})

        candidates = np.concatenate(
            [part.hostile.addresses, part.innocent.addresses]
        )
        labels = np.concatenate(
            [
                np.ones(len(part.hostile), dtype=bool),
                np.zeros(len(part.innocent), dtype=bool),
            ]
        )
        values = [scores.score_of(int(a)) for a in candidates]
        assert auc(values, labels) > 0.55
