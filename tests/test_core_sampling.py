"""Unit tests for repro.core.sampling."""

import multiprocessing
import time
from functools import partial

import numpy as np
import pytest

from repro.core.density import _block_count_vector
from repro.core.prediction import _intersection_vector
from repro.core.report import Report
from repro.core.sampling import (
    MonteCarloFailure,
    _mc_checkpoint_prefix,
    _mc_spans,
    empirical_subsets,
    monte_carlo,
    naive_sample,
    resolve_workers,
    trial_seed,
)
from repro.engine import faults
from repro.core import cidr as rcidr
from repro.ipspace.addr import first_octet
from repro.ipspace.iana import allocated_octets
from repro.ipspace.reserved import reserved_mask


class TestNaiveSample:
    def test_exact_unique_size(self, rng):
        assert len(naive_sample(500, rng)) == 500

    def test_only_allocated_octets(self, rng):
        sample = naive_sample(2000, rng)
        allocated = allocated_octets()
        for address in sample.addresses[:200]:
            assert first_octet(int(address)) in allocated

    def test_no_reserved_addresses(self, rng):
        sample = naive_sample(2000, rng)
        assert not reserved_mask(sample.addresses).any()

    def test_spread_over_octets(self, rng):
        # Uniform-over-/8s: a big sample touches most allocated /8s.
        sample = naive_sample(5000, rng)
        octets = {first_octet(int(a)) for a in sample.addresses}
        assert len(octets) > 0.8 * len(allocated_octets())

    def test_invalid_size(self, rng):
        with pytest.raises(ValueError):
            naive_sample(0, rng)

    def test_deterministic(self):
        s1 = naive_sample(100, np.random.default_rng(3))
        s2 = naive_sample(100, np.random.default_rng(3))
        assert np.array_equal(s1.addresses, s2.addresses)


class TestEmpiricalSubsets:
    @pytest.fixture
    def control(self):
        return Report.from_addresses(
            "control", [f"60.{i}.{j}.{k}" for i in range(4) for j in range(10) for k in range(1, 26)]
        )

    def test_count_and_size(self, control, rng):
        subsets = list(empirical_subsets(control, 50, 7, rng))
        assert len(subsets) == 7
        assert all(len(s) == 50 for s in subsets)

    def test_subsets_of_control(self, control, rng):
        for subset in empirical_subsets(control, 30, 3, rng):
            assert all(a in control for a in subset)

    def test_subsets_differ(self, control, rng):
        a, b = list(empirical_subsets(control, 100, 2, rng))
        assert not np.array_equal(a.addresses, b.addresses)

    def test_invalid_count(self, control, rng):
        with pytest.raises(ValueError):
            list(empirical_subsets(control, 10, 0, rng))

    def test_tags_are_indexed(self, control, rng):
        tags = [s.tag for s in empirical_subsets(control, 5, 3, rng)]
        assert tags == ["control[0]", "control[1]", "control[2]"]


class TestMonteCarlo:
    def test_statistic_applied_per_subset(self, rng):
        control = Report.from_addresses(
            "control", [f"60.0.0.{k}" for k in range(1, 200)]
        )
        values = monte_carlo(control, 10, 25, rng, statistic=len)
        assert values.shape == (25,)
        assert (values == 10).all()

    def test_deterministic_in_rng_state(self):
        control = Report.from_addresses(
            "control", [f"60.{i}.0.{k}" for i in range(4) for k in range(1, 200)]
        )
        a = monte_carlo(control, 30, 10, np.random.default_rng(5), len)
        b = monte_carlo(control, 30, 10, np.random.default_rng(5), len)
        assert np.array_equal(a, b)

    def test_invalid_count(self, rng):
        control = Report.from_addresses("control", ["60.0.0.1", "60.0.0.2"])
        with pytest.raises(ValueError):
            monte_carlo(control, 1, 0, rng, statistic=len)


@pytest.fixture(scope="module")
def wide_control():
    """A control report spread across many /16s (Monte-Carlo fodder)."""
    rng = np.random.default_rng(0xFEED)
    addresses = (
        (rng.choice(np.arange(60, 120, dtype=np.uint32), size=4000) << np.uint32(24))
        | rng.integers(0, 1 << 24, size=4000, dtype=np.uint32)
    )
    return Report.from_addresses("control", np.unique(addresses))


class TestMonteCarloParallel:
    """workers>1 must be bit-identical to serial (spawned seed streams)."""

    def test_parallel_matches_serial_scalar(self, wide_control):
        serial = monte_carlo(
            wide_control, 50, 24, np.random.default_rng(7), len, workers=1
        )
        parallel = monte_carlo(
            wide_control, 50, 24, np.random.default_rng(7), len, workers=4
        )
        assert np.array_equal(serial, parallel)

    def test_parallel_matches_serial_density_statistic(self, wide_control):
        """The Figure 2/3 block-count statistic across processes."""
        statistic = partial(
            _block_count_vector, prefixes=(16, 20, 24, 28, 32)
        )
        serial = monte_carlo(
            wide_control, 80, 20, np.random.default_rng(11), statistic, workers=1
        )
        parallel = monte_carlo(
            wide_control, 80, 20, np.random.default_rng(11), statistic, workers=4
        )
        assert serial.shape == (20, 5)
        assert np.array_equal(serial, parallel)

    def test_parallel_matches_serial_prediction_statistic(self, wide_control):
        """The §5/Table 2 intersection statistic across processes."""
        present = Report.from_addresses(
            "present", wide_control.addresses[::3]
        )
        prefixes = (16, 20, 24)
        statistic = partial(
            _intersection_vector,
            present_blocks=tuple(rcidr.cidr_set(present, n) for n in prefixes),
            prefixes=prefixes,
        )
        serial = monte_carlo(
            wide_control, 60, 20, np.random.default_rng(13), statistic, workers=1
        )
        parallel = monte_carlo(
            wide_control, 60, 20, np.random.default_rng(13), statistic, workers=3
        )
        assert np.array_equal(serial, parallel)

    def test_chunk_size_does_not_change_results(self, wide_control):
        serial = monte_carlo(
            wide_control, 40, 17, np.random.default_rng(3), len, workers=1
        )
        parallel = monte_carlo(
            wide_control, 40, 17, np.random.default_rng(3), len,
            workers=2, chunk_size=5,
        )
        assert np.array_equal(serial, parallel)


class TestWorkerResolution:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_workers() == 1

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert resolve_workers() == 3
        assert resolve_workers(2) == 2  # explicit argument wins

    def test_invalid_explicit_argument_raises(self):
        with pytest.raises(ValueError):
            resolve_workers(0)
        with pytest.raises(ValueError):
            resolve_workers(-2)

    @pytest.mark.parametrize("env", ["lots", "2.5", "0", "-3", " -1 "])
    def test_malformed_env_clamps_to_serial(self, monkeypatch, env, caplog):
        """A bad $REPRO_WORKERS warns and runs serial, never raises."""
        monkeypatch.setenv("REPRO_WORKERS", env)
        with caplog.at_level("WARNING", logger="repro.engine.sampling"):
            assert resolve_workers() == 1
        assert caplog.records, "expected a warning for a malformed value"


class TestSpawnedSeedSequences:
    def test_trial_seed_matches_spawn(self):
        root = np.random.SeedSequence(123)
        children = root.spawn(5)
        for index, child in enumerate(children):
            rebuilt = trial_seed(root.entropy, root.spawn_key, index)
            a = np.random.default_rng(child).integers(0, 1 << 30, size=8)
            b = np.random.default_rng(rebuilt).integers(0, 1 << 30, size=8)
            assert np.array_equal(a, b)

    def test_naive_sample_reproducible_under_spawned_seeds(self):
        children = np.random.SeedSequence(5).spawn(2)
        first = naive_sample(300, np.random.default_rng(children[0]))
        again = naive_sample(300, np.random.default_rng(children[0]))
        sibling = naive_sample(300, np.random.default_rng(children[1]))
        assert np.array_equal(first.addresses, again.addresses)
        assert not np.array_equal(first.addresses, sibling.addresses)

    def test_empirical_subsets_reproducible_under_spawned_seeds(self, wide_control):
        children = np.random.SeedSequence(6).spawn(2)
        first = [
            s.addresses
            for s in empirical_subsets(
                wide_control, 40, 3, np.random.default_rng(children[0])
            )
        ]
        again = [
            s.addresses
            for s in empirical_subsets(
                wide_control, 40, 3, np.random.default_rng(children[0])
            )
        ]
        sibling = [
            s.addresses
            for s in empirical_subsets(
                wide_control, 40, 3, np.random.default_rng(children[1])
            )
        ]
        for a, b in zip(first, again):
            assert np.array_equal(a, b)
        assert not np.array_equal(first[0], sibling[0])


def _sleepy_len(report):
    """Hangs only inside pool workers, so serial fallback stays fast."""
    if multiprocessing.parent_process() is not None:
        time.sleep(3.0)
    return len(report)


@pytest.fixture
def fault_env(monkeypatch):
    """Arm a REPRO_FAULTS spec for this test; always disarmed after."""

    def arm(spec):
        monkeypatch.setenv("REPRO_FAULTS", spec)
        faults.reset()

    yield arm
    faults.reset()


@pytest.fixture
def isolated_default_store(tmp_path, monkeypatch):
    from repro.engine.store import reset_default_store

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    reset_default_store()
    yield
    reset_default_store()


class TestSupervisedMonteCarlo:
    """The fault-tolerant parallel path: retries, fallback, checkpoints."""

    def _baseline(self, wide_control, seed=7, size=30, count=18):
        return monte_carlo(
            wide_control, size, count, np.random.default_rng(seed), len, workers=1
        )

    def test_worker_crash_falls_back_to_serial_bit_identical(
        self, wide_control, fault_env, isolated_default_store
    ):
        """A hard-killed worker breaks the pool; results are unchanged."""
        baseline = self._baseline(wide_control)
        arm = fault_env
        arm("worker.crash:every=1")
        survived = monte_carlo(
            wide_control, 30, 18, np.random.default_rng(7), len, workers=2
        )
        assert np.array_equal(baseline, survived)

    def test_failed_chunks_retried_on_fresh_workers(
        self, wide_control, fault_env, isolated_default_store
    ):
        """Intermittent in-worker exceptions heal through chunk retries."""
        baseline = self._baseline(wide_control)
        fault_env("worker.fail:every=2,times=1")
        survived = monte_carlo(
            wide_control, 30, 18, np.random.default_rng(7), len, workers=2
        )
        assert np.array_equal(baseline, survived)

    def test_timed_out_chunks_complete_serially(
        self, wide_control, isolated_default_store
    ):
        """Workers hang, chunks time out, the serial fallback finishes."""
        baseline = self._baseline(wide_control, seed=9, size=20, count=8)
        survived = monte_carlo(
            wide_control, 20, 8, np.random.default_rng(9), _sleepy_len,
            workers=2, chunk_timeout=0.3, max_chunk_retries=0,
        )
        assert np.array_equal(baseline, survived)

    def test_unrecoverable_failure_raises_typed_error(
        self, wide_control, fault_env, isolated_default_store
    ):
        """A fault that also hits the serial fallback surfaces typed."""
        fault_env("worker.fail:every=1")
        with pytest.raises(MonteCarloFailure):
            monte_carlo(
                wide_control, 30, 18, np.random.default_rng(7), len,
                workers=2, max_chunk_retries=0,
            )

    def test_completed_chunks_resume_from_checkpoints(
        self, wide_control, isolated_default_store
    ):
        """Chunk artifacts planted under the run's key are not recomputed."""
        from repro.engine.store import ArrayCodec, MISS, default_store

        draw = np.random.default_rng(21)
        root = np.random.SeedSequence(int.from_bytes(draw.bytes(16), "little"))
        prefix = _mc_checkpoint_prefix(root.entropy, root.spawn_key, 10, 12, len)
        spans = _mc_spans(12, workers=2, chunk_size=4)
        assert spans == [(0, 4), (4, 8), (8, 12)]

        store = default_store()
        planted = np.full(4, 999.0)
        store.put(f"{prefix}/chunk-0-4", planted, ArrayCodec())

        out = monte_carlo(
            wide_control, 10, 12, np.random.default_rng(21), len,
            workers=2, chunk_size=4,
        )
        assert np.array_equal(out[:4], planted)  # resumed, not recomputed
        assert (out[4:] == 10).all()
        # Checkpoints are dropped once the evaluation completes.
        assert store.get(f"{prefix}/chunk-0-4", ArrayCodec()) is MISS

    def test_no_checkpoint_files_left_after_success(
        self, wide_control, isolated_default_store, tmp_path
    ):
        monte_carlo(
            wide_control, 20, 12, np.random.default_rng(3), len, workers=2
        )
        cache = tmp_path / "cache"
        leftovers = [
            p for p in cache.iterdir() if p.name.startswith("mc-")
        ] if cache.is_dir() else []
        assert leftovers == []

    def test_checkpoint_disabled_still_supervises(
        self, wide_control, fault_env, isolated_default_store
    ):
        baseline = self._baseline(wide_control)
        fault_env("worker.crash:every=1")
        survived = monte_carlo(
            wide_control, 30, 18, np.random.default_rng(7), len,
            workers=2, checkpoint=False,
        )
        assert np.array_equal(baseline, survived)

    def test_statistic_tags_distinguish_partials(self):
        from repro.core.sampling import _statistic_tag

        a = partial(_block_count_vector, prefixes=(16, 24))
        b = partial(_block_count_vector, prefixes=(16, 28))
        assert _statistic_tag(a) != _statistic_tag(b)
        assert _statistic_tag(a) == _statistic_tag(
            partial(_block_count_vector, prefixes=(16, 24))
        )

    def test_statistic_tags_distinguish_sanitize_collisions(self):
        """Names that sanitize identically must not share checkpoint keys."""
        from repro.core.sampling import _statistic_tag

        def first(report):
            return 0

        def second(report):
            return 0

        # Both sanitize to "f.x." — only the raw-name hash tells them apart.
        first.__qualname__ = "f(x)"
        second.__qualname__ = "f.x."
        assert _statistic_tag(first) != _statistic_tag(second)
        assert _statistic_tag(first).startswith("f.x.-")

    def test_statistic_tags_use_label_when_present(self):
        from repro.core.density import BlockCountStatistic
        from repro.core.sampling import _statistic_tag

        tag = _statistic_tag(BlockCountStatistic((16, 24)))
        assert tag.startswith("block-counts.16.24.")
        # Deterministic across instances with equal parameters.
        assert tag == _statistic_tag(BlockCountStatistic((16, 24)))
        assert tag != _statistic_tag(BlockCountStatistic((16, 28)))
