"""Unit tests for repro.core.sampling."""

from functools import partial

import numpy as np
import pytest

from repro.core.density import _block_count_vector
from repro.core.prediction import _intersection_vector
from repro.core.report import Report
from repro.core.sampling import (
    empirical_subsets,
    monte_carlo,
    naive_sample,
    resolve_workers,
    trial_seed,
)
from repro.core import cidr as rcidr
from repro.ipspace.addr import first_octet
from repro.ipspace.iana import allocated_octets
from repro.ipspace.reserved import reserved_mask


class TestNaiveSample:
    def test_exact_unique_size(self, rng):
        assert len(naive_sample(500, rng)) == 500

    def test_only_allocated_octets(self, rng):
        sample = naive_sample(2000, rng)
        allocated = allocated_octets()
        for address in sample.addresses[:200]:
            assert first_octet(int(address)) in allocated

    def test_no_reserved_addresses(self, rng):
        sample = naive_sample(2000, rng)
        assert not reserved_mask(sample.addresses).any()

    def test_spread_over_octets(self, rng):
        # Uniform-over-/8s: a big sample touches most allocated /8s.
        sample = naive_sample(5000, rng)
        octets = {first_octet(int(a)) for a in sample.addresses}
        assert len(octets) > 0.8 * len(allocated_octets())

    def test_invalid_size(self, rng):
        with pytest.raises(ValueError):
            naive_sample(0, rng)

    def test_deterministic(self):
        s1 = naive_sample(100, np.random.default_rng(3))
        s2 = naive_sample(100, np.random.default_rng(3))
        assert np.array_equal(s1.addresses, s2.addresses)


class TestEmpiricalSubsets:
    @pytest.fixture
    def control(self):
        return Report.from_addresses(
            "control", [f"60.{i}.{j}.{k}" for i in range(4) for j in range(10) for k in range(1, 26)]
        )

    def test_count_and_size(self, control, rng):
        subsets = list(empirical_subsets(control, 50, 7, rng))
        assert len(subsets) == 7
        assert all(len(s) == 50 for s in subsets)

    def test_subsets_of_control(self, control, rng):
        for subset in empirical_subsets(control, 30, 3, rng):
            assert all(a in control for a in subset)

    def test_subsets_differ(self, control, rng):
        a, b = list(empirical_subsets(control, 100, 2, rng))
        assert not np.array_equal(a.addresses, b.addresses)

    def test_invalid_count(self, control, rng):
        with pytest.raises(ValueError):
            list(empirical_subsets(control, 10, 0, rng))

    def test_tags_are_indexed(self, control, rng):
        tags = [s.tag for s in empirical_subsets(control, 5, 3, rng)]
        assert tags == ["control[0]", "control[1]", "control[2]"]


class TestMonteCarlo:
    def test_statistic_applied_per_subset(self, rng):
        control = Report.from_addresses(
            "control", [f"60.0.0.{k}" for k in range(1, 200)]
        )
        values = monte_carlo(control, 10, 25, rng, statistic=len)
        assert values.shape == (25,)
        assert (values == 10).all()

    def test_deterministic_in_rng_state(self):
        control = Report.from_addresses(
            "control", [f"60.{i}.0.{k}" for i in range(4) for k in range(1, 200)]
        )
        a = monte_carlo(control, 30, 10, np.random.default_rng(5), len)
        b = monte_carlo(control, 30, 10, np.random.default_rng(5), len)
        assert np.array_equal(a, b)

    def test_invalid_count(self, rng):
        control = Report.from_addresses("control", ["60.0.0.1", "60.0.0.2"])
        with pytest.raises(ValueError):
            monte_carlo(control, 1, 0, rng, statistic=len)


@pytest.fixture(scope="module")
def wide_control():
    """A control report spread across many /16s (Monte-Carlo fodder)."""
    rng = np.random.default_rng(0xFEED)
    addresses = (
        (rng.choice(np.arange(60, 120, dtype=np.uint32), size=4000) << np.uint32(24))
        | rng.integers(0, 1 << 24, size=4000, dtype=np.uint32)
    )
    return Report.from_addresses("control", np.unique(addresses))


class TestMonteCarloParallel:
    """workers>1 must be bit-identical to serial (spawned seed streams)."""

    def test_parallel_matches_serial_scalar(self, wide_control):
        serial = monte_carlo(
            wide_control, 50, 24, np.random.default_rng(7), len, workers=1
        )
        parallel = monte_carlo(
            wide_control, 50, 24, np.random.default_rng(7), len, workers=4
        )
        assert np.array_equal(serial, parallel)

    def test_parallel_matches_serial_density_statistic(self, wide_control):
        """The Figure 2/3 block-count statistic across processes."""
        statistic = partial(
            _block_count_vector, prefixes=(16, 20, 24, 28, 32)
        )
        serial = monte_carlo(
            wide_control, 80, 20, np.random.default_rng(11), statistic, workers=1
        )
        parallel = monte_carlo(
            wide_control, 80, 20, np.random.default_rng(11), statistic, workers=4
        )
        assert serial.shape == (20, 5)
        assert np.array_equal(serial, parallel)

    def test_parallel_matches_serial_prediction_statistic(self, wide_control):
        """The §5/Table 2 intersection statistic across processes."""
        present = Report.from_addresses(
            "present", wide_control.addresses[::3]
        )
        prefixes = (16, 20, 24)
        statistic = partial(
            _intersection_vector,
            present_blocks=tuple(rcidr.cidr_set(present, n) for n in prefixes),
            prefixes=prefixes,
        )
        serial = monte_carlo(
            wide_control, 60, 20, np.random.default_rng(13), statistic, workers=1
        )
        parallel = monte_carlo(
            wide_control, 60, 20, np.random.default_rng(13), statistic, workers=3
        )
        assert np.array_equal(serial, parallel)

    def test_chunk_size_does_not_change_results(self, wide_control):
        serial = monte_carlo(
            wide_control, 40, 17, np.random.default_rng(3), len, workers=1
        )
        parallel = monte_carlo(
            wide_control, 40, 17, np.random.default_rng(3), len,
            workers=2, chunk_size=5,
        )
        assert np.array_equal(serial, parallel)


class TestWorkerResolution:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_workers() == 1

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert resolve_workers() == 3
        assert resolve_workers(2) == 2  # explicit argument wins

    def test_invalid_values(self, monkeypatch):
        with pytest.raises(ValueError):
            resolve_workers(0)
        monkeypatch.setenv("REPRO_WORKERS", "lots")
        with pytest.raises(ValueError):
            resolve_workers()


class TestSpawnedSeedSequences:
    def test_trial_seed_matches_spawn(self):
        root = np.random.SeedSequence(123)
        children = root.spawn(5)
        for index, child in enumerate(children):
            rebuilt = trial_seed(root.entropy, root.spawn_key, index)
            a = np.random.default_rng(child).integers(0, 1 << 30, size=8)
            b = np.random.default_rng(rebuilt).integers(0, 1 << 30, size=8)
            assert np.array_equal(a, b)

    def test_naive_sample_reproducible_under_spawned_seeds(self):
        children = np.random.SeedSequence(5).spawn(2)
        first = naive_sample(300, np.random.default_rng(children[0]))
        again = naive_sample(300, np.random.default_rng(children[0]))
        sibling = naive_sample(300, np.random.default_rng(children[1]))
        assert np.array_equal(first.addresses, again.addresses)
        assert not np.array_equal(first.addresses, sibling.addresses)

    def test_empirical_subsets_reproducible_under_spawned_seeds(self, wide_control):
        children = np.random.SeedSequence(6).spawn(2)
        first = [
            s.addresses
            for s in empirical_subsets(
                wide_control, 40, 3, np.random.default_rng(children[0])
            )
        ]
        again = [
            s.addresses
            for s in empirical_subsets(
                wide_control, 40, 3, np.random.default_rng(children[0])
            )
        ]
        sibling = [
            s.addresses
            for s in empirical_subsets(
                wide_control, 40, 3, np.random.default_rng(children[1])
            )
        ]
        for a, b in zip(first, again):
            assert np.array_equal(a, b)
        assert not np.array_equal(first[0], sibling[0])
