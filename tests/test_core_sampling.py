"""Unit tests for repro.core.sampling."""

import numpy as np
import pytest

from repro.core.report import Report
from repro.core.sampling import empirical_subsets, monte_carlo, naive_sample
from repro.ipspace.addr import first_octet
from repro.ipspace.iana import allocated_octets
from repro.ipspace.reserved import reserved_mask


class TestNaiveSample:
    def test_exact_unique_size(self, rng):
        assert len(naive_sample(500, rng)) == 500

    def test_only_allocated_octets(self, rng):
        sample = naive_sample(2000, rng)
        allocated = allocated_octets()
        for address in sample.addresses[:200]:
            assert first_octet(int(address)) in allocated

    def test_no_reserved_addresses(self, rng):
        sample = naive_sample(2000, rng)
        assert not reserved_mask(sample.addresses).any()

    def test_spread_over_octets(self, rng):
        # Uniform-over-/8s: a big sample touches most allocated /8s.
        sample = naive_sample(5000, rng)
        octets = {first_octet(int(a)) for a in sample.addresses}
        assert len(octets) > 0.8 * len(allocated_octets())

    def test_invalid_size(self, rng):
        with pytest.raises(ValueError):
            naive_sample(0, rng)

    def test_deterministic(self):
        s1 = naive_sample(100, np.random.default_rng(3))
        s2 = naive_sample(100, np.random.default_rng(3))
        assert np.array_equal(s1.addresses, s2.addresses)


class TestEmpiricalSubsets:
    @pytest.fixture
    def control(self):
        return Report.from_addresses(
            "control", [f"60.{i}.{j}.{k}" for i in range(4) for j in range(10) for k in range(1, 26)]
        )

    def test_count_and_size(self, control, rng):
        subsets = list(empirical_subsets(control, 50, 7, rng))
        assert len(subsets) == 7
        assert all(len(s) == 50 for s in subsets)

    def test_subsets_of_control(self, control, rng):
        for subset in empirical_subsets(control, 30, 3, rng):
            assert all(a in control for a in subset)

    def test_subsets_differ(self, control, rng):
        a, b = list(empirical_subsets(control, 100, 2, rng))
        assert not np.array_equal(a.addresses, b.addresses)

    def test_invalid_count(self, control, rng):
        with pytest.raises(ValueError):
            list(empirical_subsets(control, 10, 0, rng))

    def test_tags_are_indexed(self, control, rng):
        tags = [s.tag for s in empirical_subsets(control, 5, 3, rng)]
        assert tags == ["control[0]", "control[1]", "control[2]"]


class TestMonteCarlo:
    def test_statistic_applied_per_subset(self, rng):
        control = Report.from_addresses(
            "control", [f"60.0.0.{k}" for k in range(1, 200)]
        )
        values = monte_carlo(control, 10, 25, rng, statistic=len)
        assert values.shape == (25,)
        assert (values == 10).all()
