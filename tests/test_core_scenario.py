"""Unit/integration tests for the end-to-end scenario builder."""

import datetime

import numpy as np
import pytest

from repro.core.report import DataClass, ReportType
from repro.core.scenario import PaperScenario, ScenarioConfig
from repro.ipspace.reserved import reserved_mask
from repro.sim.timeline import PAPER_WINDOWS


class TestConfig:
    def test_default_valid(self):
        ScenarioConfig().validate()

    def test_small_valid(self):
        ScenarioConfig.small().validate()

    def test_bot_test_channel_must_be_disjoint(self):
        from dataclasses import replace

        config = replace(ScenarioConfig.small(), bot_test_channel=0)
        with pytest.raises(ValueError):
            config.validate()

    def test_channel_out_of_range(self):
        from dataclasses import replace

        config = replace(ScenarioConfig.small(), bot_test_channel=99)
        with pytest.raises(ValueError):
            config.validate()

    def test_invalid_sizes(self):
        from dataclasses import replace

        with pytest.raises(ValueError):
            replace(ScenarioConfig.small(), control_size=0).validate()
        with pytest.raises(ValueError):
            replace(ScenarioConfig.small(), bot_test_size=0).validate()


class TestReports:
    def test_all_tags_present(self, small_scenario):
        expected = {
            "bot", "phish", "scan", "spam", "bot-test", "phish-test",
            "phish-present", "control", "unclean",
        }
        assert expected <= set(small_scenario.reports)

    def test_report_lookup_error(self, small_scenario):
        with pytest.raises(KeyError):
            small_scenario.report("nonsense")

    def test_no_report_contains_reserved_addresses(self, small_scenario):
        for report in small_scenario.reports.values():
            assert not reserved_mask(report.addresses).any(), report.tag

    def test_no_report_contains_observed_addresses(self, small_scenario):
        observed = small_scenario.internet.observed_network
        for report in small_scenario.reports.values():
            octets = report.addresses >> 24
            assert not (octets == (observed.first_address >> 24)).any(), report.tag

    def test_table1_metadata(self, small_scenario):
        bot = small_scenario.bot
        assert bot.report_type == ReportType.PROVIDED
        assert bot.data_class == DataClass.BOTS
        assert bot.period == PAPER_WINDOWS.OCTOBER.dates()
        scan = small_scenario.scan
        assert scan.report_type == ReportType.OBSERVED
        assert scan.data_class == DataClass.SCANNING

    def test_bot_test_metadata(self, small_scenario):
        bot_test = small_scenario.bot_test
        assert bot_test.period == (
            datetime.date(2006, 5, 10),
            datetime.date(2006, 5, 10),
        )
        assert len(bot_test) <= small_scenario.config.bot_test_size

    def test_unclean_is_union(self, small_scenario):
        union = (
            small_scenario.bot
            | small_scenario.phish
            | small_scenario.scan
            | small_scenario.spam
        )
        assert np.array_equal(small_scenario.unclean.addresses, union.addresses)

    def test_control_size(self, small_scenario):
        assert len(small_scenario.control) == small_scenario.config.control_size

    def test_scan_report_is_detector_output_on_fast_scanners(self, small_scenario):
        truth = set(
            small_scenario.october_traffic.ground_truth("fast_scanners").tolist()
        )
        detected = set(int(a) for a in small_scenario.scan.addresses)
        assert truth == detected

    def test_bot_report_only_covered_channels(self, small_scenario):
        config = small_scenario.config
        covered = small_scenario.botnet.active_addresses(
            PAPER_WINDOWS.OCTOBER, channels=config.bot_report_channels
        )
        assert set(int(a) for a in small_scenario.bot.addresses) <= set(
            covered.tolist()
        )

    def test_phish_present_subset_of_sites(self, small_scenario):
        sites = set(small_scenario.phishing.address.tolist())
        assert set(int(a) for a in small_scenario.phish_present.addresses) <= sites

    def test_table1_rows_order(self, small_scenario):
        tags = [row["tag"] for row in small_scenario.table1_rows()]
        assert tags == ["bot", "phish", "scan", "spam", "bot-test", "control"]


class TestDeterminism:
    def test_same_seed_same_reports(self):
        a = PaperScenario(ScenarioConfig.small(seed=31))
        b = PaperScenario(ScenarioConfig.small(seed=31))
        for tag in a.reports:
            assert np.array_equal(
                a.reports[tag].addresses, b.reports[tag].addresses
            ), tag

    def test_different_seed_different_reports(self):
        a = PaperScenario(ScenarioConfig.small(seed=31))
        b = PaperScenario(ScenarioConfig.small(seed=32))
        assert not np.array_equal(a.bot.addresses, b.bot.addresses)


class TestBlocking:
    def test_partition_cached(self, small_scenario):
        assert small_scenario.partition is small_scenario.partition

    def test_partition_candidates_have_tcp_traffic(self, small_scenario):
        tcp_sources = set(
            small_scenario.october_traffic.flows.tcp_only().unique_sources().tolist()
        )
        assert set(int(a) for a in small_scenario.partition.candidate.addresses) <= (
            tcp_sources
        )

    def test_blocking_rows_cover_band(self, small_scenario):
        result = small_scenario.blocking()
        assert [r.prefix for r in result.rows] == list(range(24, 33))
