"""Unit tests for repro.core.stats."""

import numpy as np
import pytest

from repro.core.stats import BoxplotSummary, exceedance_fraction, summarize


class TestSummarize:
    def test_five_number_summary(self):
        s = summarize([1, 2, 3, 4, 5])
        assert s.minimum == 1
        assert s.median == 3
        assert s.maximum == 5
        assert s.mean == 3
        assert s.count == 5

    def test_single_value(self):
        s = summarize([7])
        assert s.minimum == s.median == s.maximum == 7

    def test_quantile_ordering(self, rng):
        s = summarize(rng.normal(size=500))
        assert (
            s.minimum <= s.q05 <= s.q25 <= s.median <= s.q75 <= s.q95 <= s.maximum
        )

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_as_dict_keys(self):
        d = summarize([1, 2]).as_dict()
        assert set(d) == {"min", "q05", "q25", "median", "q75", "q95", "max", "mean", "count"}


class TestExceedance:
    def test_all_below(self):
        assert exceedance_fraction(10, [1, 2, 3]) == 1.0

    def test_all_above(self):
        assert exceedance_fraction(0, [1, 2, 3]) == 0.0

    def test_ties_do_not_count(self):
        # The paper's criterion is strict: "higher than".
        assert exceedance_fraction(2, [2, 2, 2, 2]) == 0.0

    def test_mixed(self):
        assert exceedance_fraction(2.5, [1, 2, 3, 4]) == 0.5

    def test_95_percent_criterion(self):
        controls = list(range(100))  # 0..99
        assert exceedance_fraction(95, controls) == 0.95

    def test_empty_control_rejected(self):
        with pytest.raises(ValueError):
            exceedance_fraction(1, [])
