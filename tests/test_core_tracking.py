"""Unit tests for the rolling tracker (repro.core.tracking)."""

import numpy as np
import pytest

from repro.core.report import Report
from repro.core.tracking import TrackerConfig, UncleanlinessTracker
from repro.sim.timeline import Window


def bots_report(tag, block_third, count=30):
    return Report.from_addresses(
        tag, [f"62.4.{block_third}.{i}" for i in range(1, count + 1)]
    )


class TestConfig:
    def test_defaults_valid(self):
        TrackerConfig().validate()

    @pytest.mark.parametrize(
        "field,value",
        [("prefix_len", 40), ("listing_threshold", 1.5), ("ttl_days", 0)],
    )
    def test_invalid_rejected(self, field, value):
        from dataclasses import replace

        with pytest.raises(ValueError):
            replace(TrackerConfig(), **{field: value}).validate()


class TestUpdate:
    def test_update_lists_evidence(self):
        tracker = UncleanlinessTracker()
        snapshot = tracker.update(0, {"bots": bots_report("w1", 9)})
        assert snapshot["listed_or_refreshed"] == 1
        assert snapshot["active_entries"] == 1
        assert tracker.blocklist.is_blocked("62.4.9.200", day=0)

    def test_update_requires_reports(self):
        with pytest.raises(ValueError):
            UncleanlinessTracker().update(0, {})

    def test_unknown_class_gets_default_weight(self):
        tracker = UncleanlinessTracker()
        snapshot = tracker.update(0, {"honeypot": bots_report("w1", 9)})
        assert snapshot["listed_or_refreshed"] == 1

    def test_weak_evidence_not_listed(self):
        tracker = UncleanlinessTracker(TrackerConfig(listing_threshold=0.9))
        snapshot = tracker.update(0, {"bots": bots_report("w1", 9, count=1)})
        assert snapshot["listed_or_refreshed"] == 0

    def test_entries_expire_between_updates(self):
        tracker = UncleanlinessTracker(TrackerConfig(ttl_days=10))
        tracker.update(0, {"bots": bots_report("w1", 9)})
        snapshot = tracker.update(30, {"bots": bots_report("w2", 10)})
        assert snapshot["pruned"] == 1
        assert snapshot["active_entries"] == 1
        assert not tracker.blocklist.is_blocked("62.4.9.1", day=30)

    def test_refresh_keeps_entry_alive(self):
        tracker = UncleanlinessTracker(TrackerConfig(ttl_days=10))
        tracker.update(0, {"bots": bots_report("w1", 9)})
        tracker.update(7, {"bots": bots_report("w2", 9)})
        assert tracker.blocklist.is_blocked("62.4.9.1", day=15)

    def test_history_series(self):
        tracker = UncleanlinessTracker()
        tracker.update(0, {"bots": bots_report("w1", 9)})
        tracker.update(7, {"bots": bots_report("w2", 10)})
        series = tracker.series()
        assert [s["day"] for s in series] == [0, 7]


class TestEvaluate:
    def test_coverage_and_collateral(self):
        tracker = UncleanlinessTracker()
        tracker.update(0, {"bots": bots_report("w1", 9)})
        hostile = Report.from_addresses("h", ["62.4.9.200", "99.0.0.1"])
        benign = Report.from_addresses("b", ["8.8.8.8", "62.4.9.201"])
        result = tracker.evaluate(1, hostile, benign)
        assert result["hostile_coverage"] == pytest.approx(0.5)
        assert result["benign_collateral"] == pytest.approx(0.5)

    def test_evaluate_without_benign(self):
        tracker = UncleanlinessTracker()
        tracker.update(0, {"bots": bots_report("w1", 9)})
        result = tracker.evaluate(1, Report.from_addresses("h", ["62.4.9.1"]))
        assert "benign_collateral" not in result


class TestScenarioLoop:
    def test_weekly_loop_predicts_next_week(self, small_scenario):
        """Run August-October weekly; the tracker's list must cover a
        large share of each FOLLOWING week's bots, far beyond chance."""
        import datetime

        from repro.sim.timeline import date_to_day

        tracker = UncleanlinessTracker(TrackerConfig(ttl_days=45))
        start = date_to_day(datetime.date(2006, 8, 7))
        coverages = []
        for week in range(10):
            this_week = Window(start + 7 * week, start + 7 * week + 6)
            next_week = Window(start + 7 * (week + 1), start + 7 * (week + 1) + 6)
            bots_now = Report.from_addresses(
                f"w{week}", small_scenario.botnet.active_addresses(this_week)
            )
            if len(bots_now) == 0:
                continue
            tracker.update(this_week.end_day, {"bots": bots_now})
            future = Report.from_addresses(
                f"w{week}+1", small_scenario.botnet.active_addresses(next_week)
            )
            if len(future):
                result = tracker.evaluate(next_week.start_day, future)
                coverages.append(result["hostile_coverage"])
        assert coverages
        assert np.mean(coverages) > 0.5


class TestControlBaseline:
    @pytest.fixture
    def control(self):
        rng = np.random.default_rng(0x7AC)
        return Report.from_addresses(
            "control",
            np.unique(rng.integers(0, 2**32, size=4000, dtype=np.uint32)),
        )

    def test_control_requires_rng(self, control):
        tracker = UncleanlinessTracker()
        tracker.update(0, {"bots": bots_report("w1", 9)})
        with pytest.raises(ValueError):
            tracker.evaluate(1, bots_report("w2", 9), control=control)

    def test_control_coverage_summary(self, control):
        tracker = UncleanlinessTracker()
        tracker.update(0, {"bots": bots_report("w1", 9)})
        result = tracker.evaluate(
            1, bots_report("w2", 9), control=control,
            rng=np.random.default_rng(2), subsets=25,
        )
        summary = result["control_coverage"]
        assert 0.0 <= summary.minimum <= summary.maximum <= 1.0
        assert 0.0 <= result["coverage_exceedance"] <= 1.0

    def test_list_beats_random_controls(self, control):
        """The tracked list covers next week's bots far better than it
        covers random equal-cardinality control subsets."""
        tracker = UncleanlinessTracker()
        tracker.update(0, {"bots": bots_report("w1", 9)})
        result = tracker.evaluate(
            1, bots_report("w2", 9), control=control,
            rng=np.random.default_rng(2), subsets=25,
        )
        assert result["hostile_coverage"] > result["control_coverage"].q95
        assert result["coverage_exceedance"] == 1.0

    def test_matrix_matches_per_trial_reference(self, control):
        from repro.core.sampling import monte_carlo
        from repro.core.tracking import ListCoverageStatistic

        tracker = UncleanlinessTracker()
        tracker.update(0, {"bots": bots_report("w1", 9)})
        statistic = ListCoverageStatistic(
            prefix_len=tracker.config.prefix_len,
            networks=tracker.blocklist.active_networks(1),
        )
        batched = tracker.control_coverage_matrix(
            1, 30, control, np.random.default_rng(6), subsets=12
        )
        reference = monte_carlo(
            control, 30, 12, np.random.default_rng(6),
            statistic=statistic.per_trial,
        )
        assert np.array_equal(batched, reference)
