"""Unit and property tests for the trial-matrix ensemble layer.

The contract under test is *bit-identity*: a :class:`TrialEnsemble` row
must equal the per-trial ``control.sample`` draw under the same spawned
seed, batched statistics must reproduce the per-trial reference values
exactly, and ``monte_carlo`` over a batched statistic must not depend on
the worker count.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.blocking import CoveredCountStatistic
from repro.core.density import BlockCountStatistic, _block_count_vector
from repro.core.prediction import IntersectionStatistic, _intersection_vector
from repro.core.report import Report
from repro.core.sampling import monte_carlo
from repro.core.trials import TrialEnsemble, TrialStatistic, is_batched, trial_seed
from repro.core import cidr as rcidr

PREFIXES = (16, 20, 24, 28, 32)


@pytest.fixture(scope="module")
def control():
    rng = np.random.default_rng(0xC0FFEE)
    return Report.from_addresses(
        "control",
        np.unique(rng.integers(0, 2**32, size=5000, dtype=np.uint32)),
    )


def reference_subsets(control, size, count, entropy, spawn_key, start=0):
    """Per-trial draws the ensemble must reproduce row for row."""
    subsets = []
    for index in range(start, start + count):
        rng = np.random.default_rng(trial_seed(entropy, spawn_key, index))
        subsets.append(control.sample(size, rng))
    return subsets


class TestTrialEnsembleDraw:
    def test_rows_match_per_trial_sample(self, control):
        root = np.random.SeedSequence(99)
        ensemble = TrialEnsemble.draw(
            control, 50, 8, root.entropy, root.spawn_key
        )
        for index, subset in enumerate(
            reference_subsets(control, 50, 8, root.entropy, root.spawn_key)
        ):
            assert np.array_equal(ensemble.matrix[index], subset.addresses)

    def test_start_offset_selects_later_trials(self, control):
        root = np.random.SeedSequence(99)
        full = TrialEnsemble.draw(control, 30, 10, root.entropy, root.spawn_key)
        tail = TrialEnsemble.draw(
            control, 30, 4, root.entropy, root.spawn_key, start=6
        )
        assert np.array_equal(tail.matrix, full.matrix[6:])

    def test_trial_view_is_a_report(self, control):
        root = np.random.SeedSequence(7)
        ensemble = TrialEnsemble.draw(control, 20, 3, root.entropy, root.spawn_key)
        report = ensemble.trial(1)
        assert report.tag == "control[1]"
        assert np.array_equal(report.addresses, ensemble.matrix[1])

    def test_rejects_oversized_draw(self, control):
        root = np.random.SeedSequence(1)
        with pytest.raises(ValueError):
            TrialEnsemble.draw(
                control, len(control) + 1, 1, root.entropy, root.spawn_key
            )

    def test_matrix_is_read_only(self, control):
        root = np.random.SeedSequence(1)
        ensemble = TrialEnsemble.draw(control, 10, 2, root.entropy, root.spawn_key)
        with pytest.raises(ValueError):
            ensemble.matrix[0, 0] = 0


class TestProtocol:
    def test_statistics_satisfy_protocol(self):
        assert isinstance(BlockCountStatistic(PREFIXES), TrialStatistic)
        assert is_batched(BlockCountStatistic(PREFIXES))

    def test_plain_callables_are_not_batched(self):
        assert not is_batched(len)
        assert not is_batched(lambda subset: 0)


class TestBatchedEqualsReference:
    """statistic.batch(ensemble) == [statistic.per_trial(t) for t in trials]."""

    def _ensemble(self, control, size=40, count=12, seed=5):
        root = np.random.SeedSequence(seed)
        return TrialEnsemble.draw(
            control, size, count, root.entropy, root.spawn_key
        )

    def test_block_counts(self, control):
        ensemble = self._ensemble(control)
        statistic = BlockCountStatistic(PREFIXES)
        batched = statistic.batch(ensemble)
        for index in range(len(ensemble)):
            assert list(batched[index]) == statistic.per_trial(
                ensemble.trial(index)
            )

    def test_intersections(self, control):
        ensemble = self._ensemble(control)
        present = Report.from_addresses("present", control.addresses[::5])
        statistic = IntersectionStatistic(
            prefixes=PREFIXES,
            present_blocks=tuple(
                rcidr.cidr_set(present, n) for n in PREFIXES
            ),
        )
        batched = statistic.batch(ensemble)
        for index in range(len(ensemble)):
            assert list(batched[index]) == statistic.per_trial(
                ensemble.trial(index)
            )

    def test_covered_counts(self, control):
        ensemble = self._ensemble(control)
        target = Report.from_addresses("target", control.addresses[::7])
        statistic = CoveredCountStatistic.for_report(target, PREFIXES)
        batched = statistic.batch(ensemble)
        for index in range(len(ensemble)):
            assert list(batched[index]) == statistic.per_trial(
                ensemble.trial(index)
            )

    @given(
        st.lists(
            st.integers(min_value=0, max_value=0xFFFFFFFF),
            min_size=1,
            max_size=120,
            unique=True,
        ),
        st.integers(min_value=0, max_value=2**30),
    )
    @settings(max_examples=40, deadline=None)
    def test_block_counts_for_random_controls(self, addrs, seed):
        # Exercises tiny controls, /32 saturation (size == |control|) and
        # clustered duplicates-of-blocks cases hypothesis finds.
        control = Report.from_addresses("c", np.asarray(addrs, dtype=np.uint32))
        size = max(1, len(control) // 2)
        root = np.random.SeedSequence(seed)
        ensemble = TrialEnsemble.draw(
            control, size, 4, root.entropy, root.spawn_key
        )
        statistic = BlockCountStatistic((16, 24, 32))
        batched = statistic.batch(ensemble)
        for index in range(len(ensemble)):
            assert list(batched[index]) == statistic.per_trial(
                ensemble.trial(index)
            )

    def test_empty_trial_count(self, control):
        root = np.random.SeedSequence(3)
        ensemble = TrialEnsemble.draw(control, 10, 0, root.entropy, root.spawn_key)
        out = BlockCountStatistic(PREFIXES).batch(ensemble)
        assert out.shape == (0, len(PREFIXES))


class TestMonteCarloBatched:
    def test_batched_statistic_matches_per_trial_callable(self, control):
        batched = monte_carlo(
            control, 40, 15, np.random.default_rng(17),
            statistic=BlockCountStatistic(PREFIXES),
        )
        reference = monte_carlo(
            control, 40, 15, np.random.default_rng(17),
            statistic=lambda subset: _block_count_vector(subset, PREFIXES),
        )
        assert np.array_equal(batched, reference)

    @pytest.mark.parametrize("workers", [2, 3])
    def test_worker_count_invariance(self, control, workers):
        serial = monte_carlo(
            control, 40, 15, np.random.default_rng(17),
            statistic=BlockCountStatistic(PREFIXES), workers=1,
        )
        parallel = monte_carlo(
            control, 40, 15, np.random.default_rng(17),
            statistic=BlockCountStatistic(PREFIXES), workers=workers,
        )
        assert np.array_equal(serial, parallel)

    def test_chunk_size_invariance(self, control):
        one = monte_carlo(
            control, 25, 13, np.random.default_rng(29),
            statistic=BlockCountStatistic(PREFIXES), workers=2, chunk_size=4,
        )
        other = monte_carlo(
            control, 25, 13, np.random.default_rng(29),
            statistic=BlockCountStatistic(PREFIXES), workers=2, chunk_size=7,
        )
        assert np.array_equal(one, other)

    def test_prediction_statistic_end_to_end(self, control):
        present = Report.from_addresses("present", control.addresses[::4])
        prefixes = (16, 24, 32)
        statistic = IntersectionStatistic(
            prefixes=prefixes,
            present_blocks=tuple(rcidr.cidr_set(present, n) for n in prefixes),
        )
        batched = monte_carlo(
            control, 30, 10, np.random.default_rng(31), statistic=statistic
        )
        reference = monte_carlo(
            control, 30, 10, np.random.default_rng(31),
            statistic=lambda s: _intersection_vector(
                s, statistic.present_blocks, prefixes
            ),
        )
        assert np.array_equal(batched, reference)
