"""Unit tests for the §7 multidimensional metric (repro.core.uncleanliness)."""

import numpy as np
import pytest

from repro.core.report import Report
from repro.core.uncleanliness import UncleanlinessScorer, block_jaccard
from repro.ipspace.cidr import CIDRBlock


def report(tag, addrs):
    return Report.from_addresses(tag, addrs)


@pytest.fixture
def reports():
    return {
        "bots": report("bot", ["50.0.1.1", "50.0.1.2", "50.0.1.3", "50.0.2.1"]),
        "scanning": report("scan", ["50.0.1.9", "60.0.0.1"]),
        "phishing": report("phish", ["70.0.0.1"]),
    }


class TestScorer:
    def test_scores_in_unit_interval(self, reports):
        scores = UncleanlinessScorer().score(reports)
        assert (scores.scores >= 0).all()
        assert (scores.scores <= 1).all()

    def test_multi_evidence_outranks_single(self, reports):
        scores = UncleanlinessScorer().score(reports)
        # 50.0.1.0/24 has bots AND scanners; 70.0.0.0/24 has one phish.
        assert scores.score_of("50.0.1.77") > scores.score_of("70.0.0.99")

    def test_more_addresses_score_higher(self, reports):
        scores = UncleanlinessScorer().score(reports)
        assert scores.score_of("50.0.1.1") > scores.score_of("50.0.2.1")

    def test_unseen_block_scores_zero(self, reports):
        scores = UncleanlinessScorer().score(reports)
        assert scores.score_of("99.99.99.99") == 0.0

    def test_dimensions_of(self, reports):
        scores = UncleanlinessScorer().score(reports)
        dims = scores.dimensions_of("50.0.1.200")
        assert dims["bots"] == 3
        assert dims["scanning"] == 1
        assert dims["phishing"] == 0

    def test_dimensions_of_unseen(self, reports):
        scores = UncleanlinessScorer().score(reports)
        assert set(scores.dimensions_of("99.0.0.1").values()) == {0}

    def test_top_ranked_by_score(self, reports):
        scores = UncleanlinessScorer().score(reports)
        top = scores.top(2)
        assert top[0]["score"] >= top[1]["score"]
        assert top[0]["block"] == "50.0.1.0/24"

    def test_blocklist_threshold(self, reports):
        scores = UncleanlinessScorer().score(reports)
        everything = scores.blocklist(0.0)
        assert len(everything) == len(scores)
        strict = scores.blocklist(scores.score_of("50.0.1.1"))
        assert CIDRBlock.parse("50.0.1.0/24") in strict
        assert len(strict) < len(everything)

    def test_prefix_length_respected(self, reports):
        scores = UncleanlinessScorer(prefix_len=16).score(reports)
        # At /16, 50.0.1.x and 50.0.2.x collapse into one block.
        assert scores.dimensions_of("50.0.9.9")["bots"] == 4

    def test_unknown_class_rejected(self, reports):
        scorer = UncleanlinessScorer(weights={"bots": 1.0})
        with pytest.raises(ValueError):
            scorer.score(reports)

    def test_empty_reports_rejected(self):
        with pytest.raises(ValueError):
            UncleanlinessScorer().score({})

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            UncleanlinessScorer(weights={"bots": -1.0})

    def test_bad_prefix_rejected(self):
        with pytest.raises(ValueError):
            UncleanlinessScorer(prefix_len=40)

    def test_zero_weight_class_contributes_nothing(self, reports):
        weights = {"bots": 1.0, "scanning": 0.0, "phishing": 0.0}
        scores = UncleanlinessScorer(weights=weights).score(reports)
        assert scores.score_of("70.0.0.1") == 0.0
        assert scores.score_of("50.0.1.1") > 0.0


class TestBlockJaccard:
    def test_identical_reports(self):
        r = report("r", ["50.0.1.1", "50.0.2.1"])
        assert block_jaccard(r, r, 24) == 1.0

    def test_disjoint_reports(self):
        a = report("a", ["50.0.1.1"])
        b = report("b", ["60.0.1.1"])
        assert block_jaccard(a, b, 24) == 0.0

    def test_partial_overlap(self):
        a = report("a", ["50.0.1.1", "50.0.2.1"])
        b = report("b", ["50.0.1.200", "60.0.0.1"])
        assert block_jaccard(a, b, 24) == pytest.approx(1 / 3)

    def test_empty_reports(self):
        a = report("a", [])
        assert block_jaccard(a, a, 24) == 0.0

    def test_coarser_prefix_cannot_reduce_similarity_of_subsets(self):
        a = report("a", ["50.0.1.1", "50.0.2.1"])
        b = report("b", ["50.0.1.200"])
        assert block_jaccard(a, b, 16) >= block_jaccard(a, b, 24)
