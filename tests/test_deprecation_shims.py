"""Deprecation shims: once-per-name warnings, identical results.

Two shim layers survive earlier refactors: ``repro.core.cidr`` wrappers
that moved to :mod:`repro.ipspace.cidr`, and legacy top-level names
(``repro.PaperScenario`` and friends) served lazily by
``repro.__getattr__``.  Both must warn exactly once per name and return
exactly what the canonical home returns.
"""

import importlib
import warnings

import numpy as np
import pytest

import repro
from repro.core import cidr as core_cidr
from repro.ipspace import cidr as ipspace_cidr


@pytest.fixture
def reset_warned():
    """Clear the once-per-name registries so each test observes a
    first use, restoring them afterwards."""
    saved_core = set(core_cidr._WARNED)
    saved_legacy = set(repro._LEGACY_WARNED)
    core_cidr._WARNED.clear()
    repro._LEGACY_WARNED.clear()
    yield
    core_cidr._WARNED.clear()
    core_cidr._WARNED.update(saved_core)
    repro._LEGACY_WARNED.clear()
    repro._LEGACY_WARNED.update(saved_legacy)


class TestCoreCidrBlockCount:
    def test_warns_once_per_name(self, reset_warned, small_scenario):
        report = small_scenario.report("bot")
        with pytest.warns(DeprecationWarning, match="repro.ipspace.cidr"):
            core_cidr.block_count(report, 24)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            core_cidr.block_count(report, 24)  # second use: silent

    def test_result_identical_to_canonical(self, reset_warned, small_scenario):
        report = small_scenario.report("unclean")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            for prefix_len in (8, 16, 24, 32):
                assert core_cidr.block_count(report, prefix_len) == (
                    ipspace_cidr.block_count(report, prefix_len)
                )

    def test_block_counts_helper_matches_shim(self, reset_warned,
                                              small_scenario):
        report = small_scenario.report("spam")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            table = core_cidr.block_counts(report, (16, 24))
            assert table == {
                16: core_cidr.block_count(report, 16),
                24: core_cidr.block_count(report, 24),
            }


class TestLegacyTopLevelNames:
    def test_warns_once_per_name(self, reset_warned):
        with pytest.warns(DeprecationWarning, match="repro.core.scenario"):
            repro.PaperScenario
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            repro.PaperScenario  # second access: silent
        # A different legacy name still gets its own first warning.
        with pytest.warns(DeprecationWarning, match="repro.core.report"):
            repro.ReportType

    def test_legacy_names_resolve_to_canonical_objects(self, reset_warned):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            for name, (module_name, attr) in repro._LEGACY.items():
                canonical = getattr(importlib.import_module(module_name), attr)
                assert getattr(repro, name) is canonical, name

    def test_unknown_name_raises_attribute_error(self):
        with pytest.raises(AttributeError, match="no attribute"):
            repro.definitely_not_a_thing

    def test_dir_lists_legacy_names(self):
        listing = dir(repro)
        assert "PaperScenario" in listing
        assert "UncleanlinessScorer" in listing

    def test_legacy_scorer_behaves_identically(self, reset_warned,
                                               small_scenario):
        """A legacy deep import is the canonical class: same scores."""
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy_scorer = repro.UncleanlinessScorer
        from repro.core.uncleanliness import UncleanlinessScorer

        assert legacy_scorer is UncleanlinessScorer
        from repro.core.report import DataClass

        reports = {
            DataClass.BOTS: small_scenario.report("bot"),
            DataClass.SPAM: small_scenario.report("spam"),
        }
        a = legacy_scorer(prefix_len=24).score(reports)
        b = UncleanlinessScorer(prefix_len=24).score(reports)
        assert np.array_equal(a.scores, b.scores)


class TestApiVerbShims:
    """The 1.2 facade verbs: ``density_test`` / ``prediction_test`` /
    ``evaluate_blocking`` warn once and delegate to ``evaluate``."""

    @pytest.fixture
    def reset_api_warned(self):
        from repro import api

        saved = set(api._DEPRECATED_WARNED)
        api._DEPRECATED_WARNED.clear()
        yield
        api._DEPRECATED_WARNED.clear()
        api._DEPRECATED_WARNED.update(saved)

    def test_each_verb_warns_once(self, reset_api_warned, small_scenario):
        from repro import api

        run = api.run_scenario(small=True)
        with pytest.warns(DeprecationWarning, match="deprecated since 1.2.0"):
            api.evaluate_blocking(run)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            api.evaluate_blocking(run)  # second use: silent
        # Each verb keeps its own first-use warning.
        with pytest.warns(DeprecationWarning, match="prediction_test"):
            api.prediction_test(run, subsets=20)
        with pytest.warns(DeprecationWarning, match="density_test"):
            api.density_test(run, subsets=20)

    def test_shims_delegate_to_evaluate(self, reset_api_warned,
                                        small_scenario):
        from repro import api

        run = api.run_scenario(small=True)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            blocking = api.evaluate_blocking(run)
            prediction = api.prediction_test(run, subsets=20, seed=99)
            density = api.density_test(run, subsets=20, seed=99)
        assert blocking.table3() == api.evaluate(
            run, metric="blocking"
        ).table3()
        canonical = api.evaluate(
            run, metric="prediction", subsets=20, seed=99
        )
        assert prediction.observed == canonical.observed
        assert prediction.exceedance == canonical.exceedance
        assert density.rows() == api.evaluate(
            run, metric="density", train="bot", subsets=20, seed=99
        ).rows()
