"""Unit tests for the C&C channel monitor."""

import numpy as np
import pytest

from repro.detect.botlog import BotLogConfig, BotLogMonitor
from repro.sim.timeline import Window


class TestObserve:
    def test_full_observation_matches_membership(self, tiny_botnet, rng):
        window = Window(100, 113)
        monitor = BotLogMonitor(BotLogConfig(observation_probability=1.0))
        observed = monitor.observe(tiny_botnet, window, rng)
        expected = tiny_botnet.active_addresses(window)
        assert np.array_equal(observed, expected)

    def test_channel_restriction(self, tiny_botnet, rng):
        window = Window(100, 113)
        monitor = BotLogMonitor(BotLogConfig(observation_probability=1.0))
        observed = monitor.observe(tiny_botnet, window, rng, channels=[0, 1])
        expected = tiny_botnet.active_addresses(window, channels=[0, 1])
        assert np.array_equal(observed, expected)

    def test_partial_observation_subsets(self, tiny_botnet, rng):
        window = Window(100, 160)
        monitor = BotLogMonitor(BotLogConfig(observation_probability=0.5))
        observed = monitor.observe(tiny_botnet, window, rng)
        full = set(tiny_botnet.active_addresses(window).tolist())
        assert set(observed.tolist()) <= full
        if len(full) > 50:
            assert 0.3 * len(full) < observed.size < 0.7 * len(full)

    def test_empty_window(self, tiny_botnet, rng):
        # A window before any compromise can be empty; handled gracefully.
        monitor = BotLogMonitor()
        observed = monitor.observe(
            tiny_botnet, Window(0, 0), rng, channels=[0]
        )
        assert observed.size <= tiny_botnet.channel_members(0, Window(0, 0)).size

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            BotLogConfig(observation_probability=0.0).validate()
        with pytest.raises(ValueError):
            BotLogConfig(observation_probability=1.1).validate()
