"""Unit tests for the sinkhole / C&C rendezvous monitor (§7 extension)."""

import numpy as np
import pytest

from repro.detect.cnc import IRC_PORTS, SinkholeConfig, SinkholeMonitor
from repro.flows.generator import TrafficConfig, TrafficGenerator
from repro.flows.log import FlowBatch, FlowLog
from repro.flows.record import Protocol, TCPFlags
from repro.sim.timeline import Window

ACKED = TCPFlags.SYN | TCPFlags.ACK | TCPFlags.PSH

SINKHOLE = 0x1EC80A0A
OTHER_DST = 0x1E000001


def build_log(entries):
    """entries: (src, dst, dst_port[, protocol])."""
    batch = FlowBatch()
    for i, entry in enumerate(entries):
        src, dst, port = entry[:3]
        proto = entry[3] if len(entry) > 3 else Protocol.TCP
        batch.add(src, dst, 40000, port, proto, 5, 500, ACKED, float(i))
    return FlowLog.from_batches([batch])


class TestMonitor:
    def test_repeated_rendezvous_detected(self):
        log = build_log([(7, SINKHOLE, 6667), (7, SINKHOLE, 6667)])
        assert list(SinkholeMonitor().detect(log, [SINKHOLE])) == [7]

    def test_single_contact_ignored(self):
        log = build_log([(7, SINKHOLE, 6667)])
        assert SinkholeMonitor().detect(log, [SINKHOLE]).size == 0

    def test_min_contacts_configurable(self):
        log = build_log([(7, SINKHOLE, 6667)])
        monitor = SinkholeMonitor(SinkholeConfig(min_contacts=1))
        assert list(monitor.detect(log, [SINKHOLE])) == [7]

    def test_non_irc_port_ignored_by_default(self):
        log = build_log([(7, SINKHOLE, 80), (7, SINKHOLE, 80)])
        assert SinkholeMonitor().detect(log, [SINKHOLE]).size == 0

    def test_non_irc_port_caught_when_relaxed(self):
        log = build_log([(7, SINKHOLE, 80), (7, SINKHOLE, 80)])
        monitor = SinkholeMonitor(SinkholeConfig(require_irc_port=False))
        assert list(monitor.detect(log, [SINKHOLE])) == [7]

    def test_other_destinations_ignored(self):
        log = build_log([(7, OTHER_DST, 6667), (7, OTHER_DST, 6667)])
        assert SinkholeMonitor().detect(log, [SINKHOLE]).size == 0

    def test_udp_ignored(self):
        log = build_log([(7, SINKHOLE, 6667, Protocol.UDP)] * 3)
        assert SinkholeMonitor().detect(log, [SINKHOLE]).size == 0

    def test_empty_inputs(self):
        assert SinkholeMonitor().detect(FlowLog.empty(), [SINKHOLE]).size == 0
        log = build_log([(7, SINKHOLE, 6667)] * 2)
        assert SinkholeMonitor().detect(log, []).size == 0

    def test_all_irc_ports_accepted(self):
        for port in IRC_PORTS:
            log = build_log([(7, SINKHOLE, port)] * 2)
            assert SinkholeMonitor().detect(log, [SINKHOLE]).size == 1, port

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            SinkholeConfig(min_contacts=0).validate()


class TestGeneratorIntegration:
    @pytest.fixture(scope="class")
    def sinkholed_traffic(self, tiny_internet, tiny_botnet):
        config = TrafficConfig(
            benign_clients_per_day=20,
            suspicious_hosts=50,
            sinkholed_channels=(2, 5),
        )
        generator = TrafficGenerator(tiny_internet, tiny_botnet, config)
        window = Window(270, 283)
        return generator, generator.generate(window, np.random.default_rng(7)), window

    def test_sinkholes_inside_observed_network(self, sinkholed_traffic, tiny_internet):
        generator, _, _ = sinkholed_traffic
        for address in generator.sinkhole_addresses():
            assert tiny_internet.is_observed(int(address))

    def test_sinkhole_of_channel(self, sinkholed_traffic):
        generator, _, _ = sinkholed_traffic
        assert generator.sinkhole_of_channel(2) == int(generator.sinkhole_addresses()[0])
        with pytest.raises(ValueError):
            generator.sinkhole_of_channel(0)

    def test_monitor_recovers_sinkholed_bots(self, sinkholed_traffic, tiny_botnet):
        generator, traffic, window = sinkholed_traffic
        detected = SinkholeMonitor().detect(
            traffic.flows, generator.sinkhole_addresses()
        )
        truth = set(traffic.ground_truth("cnc").tolist())
        assert truth, "no sinkholed bots in window"
        # High recall (a bot with a single contact may be below threshold)
        # and no false positives.
        assert len(set(detected.tolist()) & truth) >= 0.8 * len(truth)
        assert set(detected.tolist()) <= truth

    def test_cnc_sources_are_channel_members(self, sinkholed_traffic, tiny_botnet):
        _, traffic, window = sinkholed_traffic
        members = set(
            tiny_botnet.active_addresses(window, channels=[2, 5]).tolist()
        )
        assert set(traffic.ground_truth("cnc").tolist()) <= members

    def test_no_sinkholes_no_cnc_traffic(self, tiny_traffic):
        assert tiny_traffic.ground_truth("cnc").size == 0
