"""Unit tests for the DNSBL service view (repro.detect.dnsbl)."""

import numpy as np
import pytest

from repro.core.blocklist import Blocklist
from repro.core.report import Report
from repro.detect.dnsbl import DNSBLQuery, DNSBLServer
from repro.ipspace.addr import as_int
from repro.ipspace.cidr import CIDRBlock

LISTED_BLOCK = CIDRBlock.parse("62.4.9.0/24")


@pytest.fixture
def server():
    blocklist = Blocklist(default_ttl_days=30)
    blocklist.add_block(LISTED_BLOCK, day=0)
    return DNSBLServer(blocklist)


class TestQueries:
    def test_listed_subject(self, server):
        assert server.query("9.9.9.9", "62.4.9.77", day=1)

    def test_unlisted_subject(self, server):
        assert not server.query("9.9.9.9", "8.8.8.8", day=1)

    def test_expired_entry_answers_unlisted(self, server):
        assert not server.query("9.9.9.9", "62.4.9.77", day=100)

    def test_queries_logged(self, server):
        server.query("9.9.9.9", "62.4.9.1", day=3)
        (entry,) = server.query_log
        assert entry == DNSBLQuery(
            querier=as_int("9.9.9.9"),
            subject=as_int("62.4.9.1"),
            day=3,
            listed=True,
        )

    def test_query_many(self, server):
        flags = server.query_many("9.9.9.9", ["62.4.9.1", "8.8.8.8"], day=1)
        assert list(flags) == [True, False]
        assert len(server.query_log) == 2

    def test_query_volume_by_day(self, server):
        server.query("1.1.1.1", "2.2.2.2", day=5)
        server.query("1.1.1.1", "3.3.3.3", day=5)
        server.query("1.1.1.1", "4.4.4.4", day=6)
        assert server.query_volume_by_day() == {5: 2, 6: 1}


class TestCoverage:
    def test_coverage_at_detection(self, server):
        spam = Report.from_addresses(
            "spam", ["62.4.9.1", "62.4.9.2", "8.8.8.8", "9.9.9.9"]
        )
        assert server.coverage_at_detection(spam, day=1) == pytest.approx(0.5)

    def test_scenario_blocklist_covers_future_spammers(self, small_scenario):
        """Jung & Sit shape: a list built from September bot evidence
        already covers much of October's detected spam."""
        import datetime

        from repro.sim.timeline import Window, date_to_day

        september = Window.from_dates(
            datetime.date(2006, 9, 1), datetime.date(2006, 9, 30)
        )
        evidence = Report.from_addresses(
            "sept-bots", small_scenario.botnet.active_addresses(september)
        )
        blocklist = Blocklist(default_ttl_days=60)
        blocklist.add_report(evidence, day=september.end_day)
        server = DNSBLServer(blocklist)

        oct_day = date_to_day(datetime.date(2006, 10, 7))
        coverage = server.coverage_at_detection(small_scenario.spam, oct_day)
        assert coverage > 0.5  # paper-era DNSBLs hit ~80%


class TestReconnaissance:
    def _run_queries(self, server, querier, subjects, day=1):
        for subject in subjects:
            server.query(querier, subject, day=day)

    def test_botmaster_flagged(self, server):
        bots = [f"70.1.2.{i}" for i in range(1, 6)]
        self._run_queries(server, "66.6.6.6", bots)
        future = Report.from_addresses("hostile", bots)
        assert server.reconnaissance_queriers(future) == [as_int("66.6.6.6")]

    def test_mail_server_not_flagged(self, server):
        # A mail server queries a broad mix; few of its subjects turn
        # hostile later.
        mixed = [f"80.{i}.1.1" for i in range(20)] + ["70.1.2.1", "70.1.2.2", "70.1.2.3"]
        self._run_queries(server, "10.0.0.25", mixed)
        future = Report.from_addresses("hostile", ["70.1.2.1", "70.1.2.2", "70.1.2.3"])
        assert server.reconnaissance_queriers(future) == []

    def test_min_hits_floor(self, server):
        self._run_queries(server, "66.6.6.6", ["70.1.2.1", "70.1.2.2"])
        future = Report.from_addresses("hostile", ["70.1.2.1", "70.1.2.2"])
        assert server.reconnaissance_queriers(future, min_hits=3) == []

    def test_before_day_restriction(self, server):
        bots = [f"70.1.2.{i}" for i in range(1, 6)]
        self._run_queries(server, "66.6.6.6", bots, day=10)
        future = Report.from_addresses("hostile", bots)
        assert server.reconnaissance_queriers(future, before_day=10) == []
        assert server.reconnaissance_queriers(future, before_day=11) == [
            as_int("66.6.6.6")
        ]

    def test_parameter_validation(self, server):
        future = Report.from_addresses("hostile", ["1.0.0.1"])
        with pytest.raises(ValueError):
            server.reconnaissance_queriers(future, min_hits=0)
        with pytest.raises(ValueError):
            server.reconnaissance_queriers(future, min_hit_fraction=0.0)
