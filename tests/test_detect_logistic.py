"""Unit tests for logistic-regression scan detection (Gates et al.)."""

import numpy as np
import pytest

from repro.detect.logistic import FEATURE_NAMES, LogisticScanModel, extract_features
from repro.flows.generator import TrafficConfig, TrafficGenerator
from repro.flows.log import FlowBatch, FlowLog
from repro.flows.record import Protocol, TCPFlags
from repro.sim.timeline import Window

ACKED = TCPFlags.SYN | TCPFlags.ACK | TCPFlags.PSH


def build_log(entries):
    """entries: (src, dst, dst_port, packets, octets, flags)."""
    batch = FlowBatch()
    for i, (src, dst, port, packets, octets, flags) in enumerate(entries):
        batch.add(src, dst, 40000, port, Protocol.TCP, packets, octets, flags, float(i))
    return FlowLog.from_batches([batch])


def scanner_entries(src=7, targets=50):
    return [
        (src, 0x10000000 + (t << 8), 445, 3, 156, TCPFlags.SYN)
        for t in range(targets)
    ]


def client_entries(src=8, flows=6):
    return [
        (src, 0x10000001, 80, 20, 8000, ACKED)
        for _ in range(flows)
    ]


class TestFeatures:
    def test_shape_and_order(self):
        log = build_log(scanner_entries() + client_entries())
        sources, features = extract_features(log)
        assert list(sources) == [7, 8]
        assert features.shape == (2, len(FEATURE_NAMES))

    def test_scanner_features(self):
        log = build_log(scanner_entries(targets=50))
        sources, features = extract_features(log)
        row = dict(zip(FEATURE_NAMES, features[0]))
        assert row["log_fanout"] == pytest.approx(np.log(51))
        assert row["failed_fraction"] == 1.0
        assert row["port_concentration"] == 1.0
        assert row["payload_fraction"] == 0.0
        assert row["dst_spread"] == 1.0  # every target in its own /24

    def test_client_features(self):
        log = build_log(client_entries(flows=6))
        sources, features = extract_features(log)
        row = dict(zip(FEATURE_NAMES, features[0]))
        assert row["failed_fraction"] == 0.0
        assert row["payload_fraction"] == 1.0
        assert row["log_fanout"] == pytest.approx(np.log(2))

    def test_empty_log(self):
        sources, features = extract_features(FlowLog.empty())
        assert sources.size == 0
        assert features.shape == (0, len(FEATURE_NAMES))

    def test_udp_ignored(self):
        batch = FlowBatch()
        batch.add(9, 1, 1, 53, Protocol.UDP, 2, 200, 0, 0.0)
        log = FlowLog.from_batches([batch])
        sources, _ = extract_features(log)
        assert sources.size == 0


class TestModel:
    def test_separable_training_data(self):
        log = build_log(
            sum((scanner_entries(src=100 + i) for i in range(8)), [])
            + sum((client_entries(src=200 + i) for i in range(8)), [])
        )
        truth = np.asarray([100 + i for i in range(8)], dtype=np.uint32)
        model = LogisticScanModel().fit_from_truth(log, truth)
        detected = model.detect(log)
        assert set(detected.tolist()) == set(truth.tolist())

    def test_probabilities_ordered(self):
        log = build_log(scanner_entries(src=7) + client_entries(src=8))
        truth = np.asarray([7], dtype=np.uint32)
        training = build_log(
            sum((scanner_entries(src=100 + i) for i in range(6)), [])
            + sum((client_entries(src=200 + i) for i in range(6)), [])
        )
        model = LogisticScanModel().fit_from_truth(
            training, np.asarray([100 + i for i in range(6)], dtype=np.uint32)
        )
        scores = model.score_sources(log)
        assert scores[7] > scores[8]

    def test_unfitted_model_raises(self):
        model = LogisticScanModel()
        with pytest.raises(RuntimeError):
            model.detect(build_log(client_entries()))

    def test_single_class_training_rejected(self):
        log = build_log(client_entries(src=8))
        with pytest.raises(ValueError):
            LogisticScanModel().fit_from_truth(log, np.asarray([], dtype=np.uint32))

    def test_bad_config(self):
        with pytest.raises(ValueError):
            LogisticScanModel(iterations=0)
        with pytest.raises(ValueError):
            LogisticScanModel(threshold=1.0)

    def test_coefficients_exposed(self):
        log = build_log(scanner_entries(src=7) + client_entries(src=8))
        model = LogisticScanModel().fit_from_truth(
            log, np.asarray([7], dtype=np.uint32)
        )
        coefficients = {row["feature"]: row["weight"] for row in model.coefficients()}
        assert set(coefficients) == set(FEATURE_NAMES)
        # Failed connections are the classic scan signal.
        assert coefficients["failed_fraction"] > 0


class TestGeneratorIntegration:
    def test_cross_window_generalisation(self, tiny_internet, tiny_botnet):
        """Train on one fortnight, detect on another: recall on fast
        scanners stays high and benign false positives stay near zero."""
        config = TrafficConfig(benign_clients_per_day=40, suspicious_hosts=100)
        generator = TrafficGenerator(tiny_internet, tiny_botnet, config)
        train = generator.generate(Window(230, 243), np.random.default_rng(1))
        test = generator.generate(Window(260, 273), np.random.default_rng(2))

        model = LogisticScanModel().fit_from_truth(
            train.flows, train.ground_truth("fast_scanners")
        )
        detected = set(model.detect(test.flows).tolist())
        truth = set(test.ground_truth("fast_scanners").tolist())
        if not truth:
            pytest.skip("no fast scanners in test window")
        recall = len(detected & truth) / len(truth)
        assert recall > 0.8

        hostile = truth | {
            int(a)
            for name in ("slow_scanners", "ephemeral", "suspicious", "spammers")
            for a in test.ground_truth(name)
        }
        benign_only = set(test.ground_truth("benign").tolist()) - hostile
        false_positives = len(detected & benign_only) / max(len(benign_only), 1)
        assert false_positives < 0.05
