"""Unit tests for the phishing list aggregator."""

import numpy as np
import pytest

from repro.detect.phishlist import PhishListAggregator, PhishListConfig
from repro.sim.timeline import Window


class TestObserve:
    def test_listed_sites_subset_of_history(self, tiny_phishing, rng):
        aggregator = PhishListAggregator()
        listed = aggregator.observe(tiny_phishing, Window(100, 160), rng)
        assert set(listed.tolist()) <= set(tiny_phishing.address.tolist())

    def test_full_reporting_no_lag_lists_everything_live(self, tiny_phishing, rng):
        config = PhishListConfig(report_probability=1.0, mean_report_lag_days=0.0)
        aggregator = PhishListAggregator(config)
        window = Window(0, tiny_phishing.config.horizon_days - 1)
        listed = aggregator.observe(tiny_phishing, window, rng)
        assert listed.size == np.unique(tiny_phishing.address).size

    def test_partial_reporting_misses_sites(self, tiny_phishing):
        window = Window(0, tiny_phishing.config.horizon_days - 1)
        full = PhishListAggregator(
            PhishListConfig(report_probability=1.0, mean_report_lag_days=0.0)
        ).observe(tiny_phishing, window, np.random.default_rng(1))
        partial = PhishListAggregator(
            PhishListConfig(report_probability=0.4, mean_report_lag_days=0.0)
        ).observe(tiny_phishing, window, np.random.default_rng(1))
        assert partial.size < full.size

    def test_lag_pushes_listings_later(self, tiny_phishing):
        early = Window(0, 60)
        lagless = PhishListAggregator(
            PhishListConfig(report_probability=1.0, mean_report_lag_days=0.0)
        ).observe(tiny_phishing, early, np.random.default_rng(2))
        lagged = PhishListAggregator(
            PhishListConfig(report_probability=1.0, mean_report_lag_days=20.0)
        ).observe(tiny_phishing, early, np.random.default_rng(2))
        assert lagged.size <= lagless.size

    def test_deterministic(self, tiny_phishing):
        window = Window(100, 160)
        a = PhishListAggregator().observe(
            tiny_phishing, window, np.random.default_rng(3)
        )
        b = PhishListAggregator().observe(
            tiny_phishing, window, np.random.default_rng(3)
        )
        assert np.array_equal(a, b)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            PhishListConfig(report_probability=0.0).validate()
        with pytest.raises(ValueError):
            PhishListConfig(mean_report_lag_days=-1.0).validate()
