"""Unit tests for the hourly fan-out scan detector."""

import numpy as np
import pytest

from repro.detect.scan import ScanDetector, ScanDetectorConfig
from repro.flows.log import FlowBatch, FlowLog
from repro.flows.record import Protocol, TCPFlags

ACKED = TCPFlags.SYN | TCPFlags.ACK | TCPFlags.PSH


def build_log(entries):
    """entries: (src, dst, flags, start_time[, protocol])."""
    batch = FlowBatch()
    for entry in entries:
        src, dst, flags, start = entry[:4]
        proto = entry[4] if len(entry) > 4 else Protocol.TCP
        batch.add(src, dst, 40000, 445, proto, 3, 156, flags, start)
    return FlowLog.from_batches([batch])


def sweep(src, targets, hour, flags=TCPFlags.SYN):
    base = hour * 3600.0
    return [(src, 1000 + t, flags, base + t) for t in range(targets)]


class TestDetection:
    def test_fast_sweep_detected(self):
        log = build_log(sweep(7, 40, hour=2))
        assert list(ScanDetector().detect(log)) == [7]

    def test_exact_threshold_detected(self):
        config = ScanDetectorConfig(min_targets=30)
        log = build_log(sweep(7, 30, hour=2))
        assert list(ScanDetector(config).detect(log)) == [7]

    def test_below_threshold_missed(self):
        log = build_log(sweep(7, 29, hour=2))
        assert ScanDetector().detect(log).size == 0

    def test_slow_scan_across_hours_missed(self):
        # 48 targets but spread over 24 hours: 2/hour, under the floor.
        entries = []
        for hour in range(24):
            entries.extend(sweep(7, 2, hour=hour))
        # distinct targets per sweep call collide; rebuild with unique dsts
        entries = [
            (7, 5000 + i, TCPFlags.SYN, i * 1800.0) for i in range(48)
        ]
        log = build_log(entries)
        assert ScanDetector().detect(log).size == 0

    def test_successful_fanout_not_flagged(self):
        # A busy proxy talks to 40 hosts in an hour but completes its
        # connections — the failed-fraction gate holds.
        log = build_log(sweep(7, 40, hour=2, flags=ACKED))
        assert ScanDetector().detect(log).size == 0

    def test_mixed_sources(self):
        entries = sweep(7, 40, hour=2) + sweep(8, 5, hour=2)
        log = build_log(entries)
        assert list(ScanDetector().detect(log)) == [7]

    def test_udp_ignored(self):
        entries = [
            (7, 1000 + t, TCPFlags.SYN, 7200.0 + t, Protocol.UDP) for t in range(40)
        ]
        log = build_log(entries)
        assert ScanDetector().detect(log).size == 0

    def test_empty_log(self):
        assert ScanDetector().detect(FlowLog.empty()).size == 0

    def test_repeat_contacts_do_not_inflate_fanout(self):
        # 40 flows to ONE destination is not a scan.
        entries = [(7, 1000, TCPFlags.SYN, 7200.0 + t) for t in range(40)]
        log = build_log(entries)
        assert ScanDetector().detect(log).size == 0

    def test_failed_fraction_boundary(self):
        # Exactly half failed at the default 0.5 floor: flagged.
        entries = sweep(7, 20, hour=2, flags=TCPFlags.SYN) + sweep(
            7, 20, hour=2, flags=ACKED
        )
        # Make destinations disjoint between halves.
        entries = [
            (7, 1000 + t, TCPFlags.SYN, 7200.0 + t) for t in range(20)
        ] + [
            (7, 2000 + t, ACKED, 7200.0 + t) for t in range(20)
        ]
        log = build_log(entries)
        assert list(ScanDetector().detect(log)) == [7]

    def test_generator_fast_scanners_detected(self, tiny_traffic):
        detected = set(ScanDetector().detect(tiny_traffic.flows).tolist())
        truth = set(tiny_traffic.ground_truth("fast_scanners").tolist())
        assert truth <= detected

    def test_generator_slow_scanners_missed(self, tiny_traffic):
        detected = set(ScanDetector().detect(tiny_traffic.flows).tolist())
        fast = set(tiny_traffic.ground_truth("fast_scanners").tolist())
        slow = set(tiny_traffic.ground_truth("slow_scanners").tolist()) - fast
        assert not (slow & detected)


class TestEdgeCases:
    def test_tcp_empty_but_log_not(self):
        # A log carrying only UDP flows has an EMPTY TCP view; the
        # detector must come back clean, not crash on zero-length tables.
        entries = [
            (7, 1000 + t, TCPFlags.SYN, 7200.0 + t, Protocol.UDP)
            for t in range(40)
        ]
        log = build_log(entries)
        assert len(log) == 40
        result = ScanDetector().detect(log)
        assert result.size == 0
        assert result.dtype == np.uint32

    def test_empty_log_dtype(self):
        result = ScanDetector().detect(FlowLog.empty())
        assert result.size == 0
        assert result.dtype == np.uint32

    def test_exactly_min_targets_in_one_hour(self):
        # A source at exactly the floor is flagged; one fewer is not —
        # for a non-default calibration too.
        config = ScanDetectorConfig(min_targets=12)
        at_floor = build_log(sweep(7, 12, hour=5))
        below = build_log(sweep(8, 11, hour=5))
        assert list(ScanDetector(config).detect(at_floor)) == [7]
        assert ScanDetector(config).detect(below).size == 0

    def test_sweep_straddling_hour_boundary_splits(self):
        # 40 distinct targets, but the burst crosses an hour boundary
        # 20/20: neither clock-hour bucket reaches the floor, so the
        # hourly calibration (deliberately) misses it.
        entries = [
            (7, 1000 + t, TCPFlags.SYN, 2 * 3600.0 - 20.0 + t) for t in range(40)
        ]
        log = build_log(entries)
        hours = np.unique((log.start_time // 3600).astype(np.int64))
        assert hours.tolist() == [1, 2]  # really does straddle
        assert ScanDetector().detect(log).size == 0

    def test_sweep_straddling_boundary_with_enough_on_one_side(self):
        # Same straddle, but one side still clears the floor on its own.
        entries = [
            (7, 1000 + t, TCPFlags.SYN, 2 * 3600.0 - 5.0 + t) for t in range(40)
        ]
        log = build_log(entries)
        assert list(ScanDetector().detect(log)) == [7]

    def test_failed_fraction_counts_flows_not_targets(self):
        # 30 distinct failed targets plus 31 successful repeats of ONE
        # target in the same hour: fan-out passes (31 distinct) but the
        # failed FLOW fraction is 30/61 < 0.5, so no flag.
        entries = [
            (7, 1000 + t, TCPFlags.SYN, 7200.0 + t) for t in range(30)
        ] + [
            (7, 999, ACKED, 7200.0 + 100 + t) for t in range(31)
        ]
        assert ScanDetector().detect(build_log(entries)).size == 0


class TestConfig:
    def test_invalid_targets(self):
        with pytest.raises(ValueError):
            ScanDetectorConfig(min_targets=0).validate()

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            ScanDetectorConfig(min_failed_fraction=1.5).validate()


# -- packed-key kernel vs row-table reference ------------------------------

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.detect.scan import ScanAggregates


@st.composite
def flow_arrays(draw):
    """Adversarial flow logs for the scan kernel.

    Sources are drawn from a tiny pool (so single /32s repeat densely),
    start times cluster tightly around hour boundaries (so equal-hour
    and boundary-tie groupings both occur), and (src, hour, dst)
    triples duplicate freely.
    """
    n = draw(st.integers(min_value=0, max_value=120))
    sources = draw(
        st.lists(
            st.integers(min_value=0, max_value=3), min_size=n, max_size=n
        )
    )
    dsts = draw(
        st.lists(
            st.integers(min_value=1000, max_value=1007), min_size=n, max_size=n
        )
    )
    # Offsets of a few seconds either side of an exact hour boundary.
    hours = draw(
        st.lists(st.integers(min_value=0, max_value=4), min_size=n, max_size=n)
    )
    jitter = draw(
        st.lists(
            st.integers(min_value=-2, max_value=2), min_size=n, max_size=n
        )
    )
    acked = draw(st.lists(st.booleans(), min_size=n, max_size=n))
    tcp = draw(st.lists(st.booleans(), min_size=n, max_size=n))
    start = np.maximum(
        np.asarray(hours, dtype=np.float64) * 3600.0
        + np.asarray(jitter, dtype=np.float64),
        0.0,
    )
    return FlowLog(
        src_addr=np.asarray(sources, dtype=np.uint32),
        dst_addr=np.asarray(dsts, dtype=np.uint32),
        src_port=np.full(n, 40000, dtype=np.uint16),
        dst_port=np.full(n, 445, dtype=np.uint16),
        protocol=np.where(tcp, Protocol.TCP, Protocol.UDP).astype(np.uint8)
        if n
        else np.asarray([], dtype=np.uint8),
        packets=np.full(n, 3, dtype=np.uint32),
        octets=np.full(n, 156, dtype=np.uint64),
        tcp_flags=np.where(
            acked, int(TCPFlags.SYN | TCPFlags.ACK), int(TCPFlags.SYN)
        ).astype(np.uint8)
        if n
        else np.asarray([], dtype=np.uint8),
        start_time=start,
        end_time=start + 1.0,
    )


# Low thresholds so the tiny generated logs actually exercise flagging.
_PROP_CONFIG = ScanDetectorConfig(min_targets=3, min_failed_fraction=0.5)


class TestKernelMatchesReference:
    @settings(max_examples=200, deadline=None)
    @given(flow_arrays())
    def test_detect_equals_reference(self, flows):
        detector = ScanDetector(_PROP_CONFIG)
        fast = detector.detect(flows)
        reference = detector.detect_reference(flows)
        assert fast.dtype == reference.dtype == np.uint32
        assert np.array_equal(fast, reference)

    @settings(max_examples=100, deadline=None)
    @given(flow_arrays())
    def test_aggregates_equal_reference(self, flows):
        detector = ScanDetector(_PROP_CONFIG)
        flagged = ScanAggregates.from_flows(flows).flagged(_PROP_CONFIG)
        assert np.array_equal(flagged, detector.detect_reference(flows))

    @settings(max_examples=100, deadline=None)
    @given(flow_arrays(), st.integers(min_value=0, max_value=120))
    def test_merged_aggregates_equal_whole(self, flows, cut):
        cut = min(cut, len(flows))
        mask = np.zeros(len(flows), dtype=bool)
        mask[:cut] = True
        left = ScanAggregates.from_flows(flows.select(mask))
        right = ScanAggregates.from_flows(flows.select(~mask))
        merged = left.merge(right).flagged(_PROP_CONFIG)
        whole = ScanAggregates.from_flows(flows).flagged(_PROP_CONFIG)
        assert np.array_equal(merged, whole)

    def test_empty_tcp_window(self):
        # UDP-only log: the TCP mask selects nothing.
        entries = [
            (7, 1000 + t, TCPFlags.SYN, 7200.0 + t, Protocol.UDP)
            for t in range(40)
        ]
        log = build_log(entries)
        detector = ScanDetector()
        assert detector.detect(log).size == 0
        assert detector.detect_reference(log).size == 0

    def test_detect_chunked_equals_detect(self):
        entries = (
            sweep(7, 40, hour=2)
            + sweep(8, 5, hour=2)
            + sweep(9, 35, hour=3)
            + [(9, 2000 + t, ACKED, 3 * 3600.0 + t) for t in range(40)]
        )
        log = build_log(entries)
        detector = ScanDetector()
        whole = detector.detect(log)
        for pieces in (1, 2, 7, len(log)):
            bounds = np.linspace(0, len(log), pieces + 1).astype(int)
            chunks = []
            for lo, hi in zip(bounds[:-1], bounds[1:]):
                mask = np.zeros(len(log), dtype=bool)
                mask[lo:hi] = True
                chunks.append(log.select(mask))
            assert np.array_equal(detector.detect_chunked(chunks), whole)

    def test_merge_empty_identity(self):
        log = build_log(sweep(7, 40, hour=2))
        agg = ScanAggregates.from_flows(log)
        out = agg.merge(ScanAggregates.empty()).flagged(ScanDetectorConfig())
        assert np.array_equal(out, agg.flagged(ScanDetectorConfig()))
        out = ScanAggregates.empty().merge(agg).flagged(ScanDetectorConfig())
        assert np.array_equal(out, agg.flagged(ScanDetectorConfig()))
