"""Unit tests for the hourly fan-out scan detector."""

import numpy as np
import pytest

from repro.detect.scan import ScanDetector, ScanDetectorConfig
from repro.flows.log import FlowBatch, FlowLog
from repro.flows.record import Protocol, TCPFlags

ACKED = TCPFlags.SYN | TCPFlags.ACK | TCPFlags.PSH


def build_log(entries):
    """entries: (src, dst, flags, start_time[, protocol])."""
    batch = FlowBatch()
    for entry in entries:
        src, dst, flags, start = entry[:4]
        proto = entry[4] if len(entry) > 4 else Protocol.TCP
        batch.add(src, dst, 40000, 445, proto, 3, 156, flags, start)
    return FlowLog.from_batches([batch])


def sweep(src, targets, hour, flags=TCPFlags.SYN):
    base = hour * 3600.0
    return [(src, 1000 + t, flags, base + t) for t in range(targets)]


class TestDetection:
    def test_fast_sweep_detected(self):
        log = build_log(sweep(7, 40, hour=2))
        assert list(ScanDetector().detect(log)) == [7]

    def test_exact_threshold_detected(self):
        config = ScanDetectorConfig(min_targets=30)
        log = build_log(sweep(7, 30, hour=2))
        assert list(ScanDetector(config).detect(log)) == [7]

    def test_below_threshold_missed(self):
        log = build_log(sweep(7, 29, hour=2))
        assert ScanDetector().detect(log).size == 0

    def test_slow_scan_across_hours_missed(self):
        # 48 targets but spread over 24 hours: 2/hour, under the floor.
        entries = []
        for hour in range(24):
            entries.extend(sweep(7, 2, hour=hour))
        # distinct targets per sweep call collide; rebuild with unique dsts
        entries = [
            (7, 5000 + i, TCPFlags.SYN, i * 1800.0) for i in range(48)
        ]
        log = build_log(entries)
        assert ScanDetector().detect(log).size == 0

    def test_successful_fanout_not_flagged(self):
        # A busy proxy talks to 40 hosts in an hour but completes its
        # connections — the failed-fraction gate holds.
        log = build_log(sweep(7, 40, hour=2, flags=ACKED))
        assert ScanDetector().detect(log).size == 0

    def test_mixed_sources(self):
        entries = sweep(7, 40, hour=2) + sweep(8, 5, hour=2)
        log = build_log(entries)
        assert list(ScanDetector().detect(log)) == [7]

    def test_udp_ignored(self):
        entries = [
            (7, 1000 + t, TCPFlags.SYN, 7200.0 + t, Protocol.UDP) for t in range(40)
        ]
        log = build_log(entries)
        assert ScanDetector().detect(log).size == 0

    def test_empty_log(self):
        assert ScanDetector().detect(FlowLog.empty()).size == 0

    def test_repeat_contacts_do_not_inflate_fanout(self):
        # 40 flows to ONE destination is not a scan.
        entries = [(7, 1000, TCPFlags.SYN, 7200.0 + t) for t in range(40)]
        log = build_log(entries)
        assert ScanDetector().detect(log).size == 0

    def test_failed_fraction_boundary(self):
        # Exactly half failed at the default 0.5 floor: flagged.
        entries = sweep(7, 20, hour=2, flags=TCPFlags.SYN) + sweep(
            7, 20, hour=2, flags=ACKED
        )
        # Make destinations disjoint between halves.
        entries = [
            (7, 1000 + t, TCPFlags.SYN, 7200.0 + t) for t in range(20)
        ] + [
            (7, 2000 + t, ACKED, 7200.0 + t) for t in range(20)
        ]
        log = build_log(entries)
        assert list(ScanDetector().detect(log)) == [7]

    def test_generator_fast_scanners_detected(self, tiny_traffic):
        detected = set(ScanDetector().detect(tiny_traffic.flows).tolist())
        truth = set(tiny_traffic.ground_truth("fast_scanners").tolist())
        assert truth <= detected

    def test_generator_slow_scanners_missed(self, tiny_traffic):
        detected = set(ScanDetector().detect(tiny_traffic.flows).tolist())
        fast = set(tiny_traffic.ground_truth("fast_scanners").tolist())
        slow = set(tiny_traffic.ground_truth("slow_scanners").tolist()) - fast
        assert not (slow & detected)


class TestConfig:
    def test_invalid_targets(self):
        with pytest.raises(ValueError):
            ScanDetectorConfig(min_targets=0).validate()

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            ScanDetectorConfig(min_failed_fraction=1.5).validate()
