"""Unit tests for the behavioural spam detector."""

import numpy as np
import pytest

from repro.detect.spam import SpamDetector, SpamDetectorConfig
from repro.flows.log import FlowBatch, FlowLog
from repro.flows.record import Protocol, TCPFlags

ACKED = TCPFlags.SYN | TCPFlags.ACK | TCPFlags.PSH | TCPFlags.FIN
DAY = 86_400.0


def build_log(entries):
    """entries: (src, dst, dst_port, octets, time[, flags])."""
    batch = FlowBatch()
    for entry in entries:
        src, dst, port, octets, t = entry[:5]
        flags = entry[5] if len(entry) > 5 else ACKED
        batch.add(src, dst, 40000, port, Protocol.TCP, 10, octets, flags, float(t))
    return FlowLog.from_batches([batch])


def spam_run(src=7, messages=20, size=1200, start=0.0, per_day=10):
    entries = []
    for i in range(messages):
        day = i // per_day
        entries.append((src, 1, 25, size, start + day * DAY + i * 60))
    return entries


class TestDetection:
    def test_bulk_sender_flagged(self):
        assert list(SpamDetector().detect(build_log(spam_run()))) == [7]

    def test_low_volume_missed(self):
        log = build_log(spam_run(messages=5))
        assert SpamDetector().detect(log).size == 0

    def test_slow_drip_missed(self):
        # 14 messages over 14 days: volume ok, rate too low.
        log = build_log(spam_run(messages=14, per_day=1))
        assert SpamDetector().detect(log).size == 0

    def test_varied_sizes_missed(self):
        # Human mail: wildly varying sizes -> high CV.
        entries = []
        sizes = [300, 500, 800, 400, 250_000, 600, 900, 350, 400_000, 700,
                 500, 650]
        for i, size in enumerate(sizes):
            entries.append((7, 1, 25, size, i * 60))
        log = build_log(entries)
        assert SpamDetector().detect(log).size == 0

    def test_non_smtp_traffic_ignored(self):
        entries = [(7, 1, 80, 1200, i * 60) for i in range(30)]
        log = build_log(entries)
        assert SpamDetector().detect(log).size == 0

    def test_syn_only_port25_ignored(self):
        # No payload (no ACK): connection attempts, not deliveries.
        entries = [(7, 1, 25, 156, i * 60, TCPFlags.SYN) for i in range(30)]
        log = build_log(entries)
        assert SpamDetector().detect(log).size == 0

    def test_multiple_sources(self):
        entries = spam_run(src=7) + spam_run(src=8, messages=3)
        detected = SpamDetector().detect(build_log(entries))
        assert list(detected) == [7]

    def test_empty_log(self):
        assert SpamDetector().detect(FlowLog.empty()).size == 0

    def test_threshold_boundary(self):
        config = SpamDetectorConfig(min_messages=10, min_daily_rate=4.0)
        ten = build_log(spam_run(messages=10, per_day=10))
        nine = build_log(spam_run(messages=9, per_day=9))
        assert SpamDetector(config).detect(ten).size == 1
        assert SpamDetector(config).detect(nine).size == 0

    def test_generator_spammers_detected(self, tiny_traffic):
        detected = set(SpamDetector().detect(tiny_traffic.flows).tolist())
        truth = set(tiny_traffic.ground_truth("spammers").tolist())
        # Behavioural detection is not perfect, but recall should be high
        # and there should be no benign-only false positives.
        assert len(detected & truth) > 0.7 * len(truth)
        hostile = truth | set(tiny_traffic.ground_truth("fast_scanners").tolist())
        benign_only = set(tiny_traffic.ground_truth("benign").tolist()) - hostile
        # Benign clients do occasionally mail, but never in bulk.
        assert len(detected & benign_only) < 0.02 * max(len(benign_only), 1)


class TestConfig:
    @pytest.mark.parametrize(
        "field,value",
        [("min_messages", 0), ("min_daily_rate", 0.0), ("max_size_cv", 0.0)],
    )
    def test_invalid_rejected(self, field, value):
        from dataclasses import replace

        with pytest.raises(ValueError):
            replace(SpamDetectorConfig(), **{field: value}).validate()
