"""Unit tests for the Threshold Random Walk detector."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.detect.trw import TRWConfig, TRWDetector
from repro.flows.log import FlowBatch, FlowLog
from repro.flows.record import Protocol, TCPFlags

ACKED = TCPFlags.SYN | TCPFlags.ACK


def build_log(entries):
    """entries: (src, dst, acked, time)."""
    batch = FlowBatch()
    for src, dst, acked, t in entries:
        flags = ACKED if acked else TCPFlags.SYN
        batch.add(src, dst, 40000, 80, Protocol.TCP, 3, 156, flags, float(t))
    return FlowLog.from_batches([batch])


class TestConfig:
    def test_thresholds(self):
        config = TRWConfig(alpha=0.01, beta=0.01)
        assert config.upper_threshold == pytest.approx(99.0)
        assert config.lower_threshold == pytest.approx(0.01 / 0.99)

    def test_steps_signs(self):
        config = TRWConfig()
        assert config.success_step < 0  # success pushes toward benign
        assert config.failure_step > 0  # failure pushes toward scanner

    def test_invalid_thetas(self):
        with pytest.raises(ValueError):
            TRWConfig(theta0=0.2, theta1=0.8).validate()

    def test_invalid_rates(self):
        with pytest.raises(ValueError):
            TRWConfig(alpha=0.0).validate()


class TestDetection:
    def test_all_failures_flagged(self):
        entries = [(7, 100 + i, False, i) for i in range(10)]
        assert list(TRWDetector().detect(build_log(entries))) == [7]

    def test_all_successes_benign(self):
        entries = [(7, 100 + i, True, i) for i in range(10)]
        detector = TRWDetector()
        assert detector.detect(build_log(entries)).size == 0
        states = detector.walk(build_log(entries))
        assert states[7].verdict == "benign"

    def test_walk_stops_after_verdict(self):
        # 10 failures decide the walk; later successes can't undo it.
        entries = [(7, 100 + i, False, i) for i in range(10)]
        entries += [(7, 200 + i, True, 100 + i) for i in range(50)]
        detector = TRWDetector()
        states = detector.walk(build_log(entries))
        assert states[7].verdict == "scanner"
        assert states[7].outcomes < 60

    def test_minimum_failures_to_flag(self):
        # With symmetric defaults, N failures are needed where
        # N * failure_step >= ln(upper).
        config = TRWConfig()
        needed = math.ceil(
            math.log(config.upper_threshold) / config.failure_step
        )
        just_enough = [(7, 100 + i, False, i) for i in range(needed)]
        one_short = [(7, 100 + i, False, i) for i in range(needed - 1)]
        assert TRWDetector(config).detect(build_log(just_enough)).size == 1
        assert TRWDetector(config).detect(build_log(one_short)).size == 0

    def test_first_contact_only(self):
        # Repeated failures to the SAME destination count once.
        entries = [(7, 100, False, i) for i in range(50)]
        assert TRWDetector().detect(build_log(entries)).size == 0

    def test_outcomes_processed_in_time_order(self):
        # Two early successes offset two of the four failures, leaving the
        # walk undecided; processed in log order (failures first), the four
        # failures alone would cross the scanner threshold.
        entries = [(7, 100 + i, False, 50 + i) for i in range(4)]
        entries += [(7, 200 + i, True, i) for i in range(2)]
        states = TRWDetector().walk(build_log(entries))
        assert states[7].verdict == "pending"

    def test_mixed_sources_independent(self):
        entries = [(7, 100 + i, False, i) for i in range(10)]
        entries += [(8, 100 + i, True, i) for i in range(10)]
        detected = TRWDetector().detect(build_log(entries))
        assert list(detected) == [7]

    def test_generator_scanners_flagged_benign_not(self, tiny_traffic):
        detector = TRWDetector()
        detected = set(detector.detect(tiny_traffic.flows).tolist())
        fast = set(tiny_traffic.ground_truth("fast_scanners").tolist())
        hostileish = (
            fast
            | set(tiny_traffic.ground_truth("slow_scanners").tolist())
            | set(tiny_traffic.ground_truth("ephemeral").tolist())
            | set(tiny_traffic.ground_truth("suspicious").tolist())
            | set(tiny_traffic.ground_truth("spammers").tolist())
        )
        benign_only = set(tiny_traffic.ground_truth("benign").tolist()) - hostileish
        # Pure sweepers (no mitigating successful traffic) are all caught;
        # scanners that also spam or browse may stay undecided.
        pure_fast = fast - (
            set(tiny_traffic.ground_truth("spammers").tolist())
            | set(tiny_traffic.ground_truth("benign").tolist())
            | set(tiny_traffic.ground_truth("ephemeral").tolist())
            | set(tiny_traffic.ground_truth("suspicious").tolist())
        )
        assert pure_fast <= detected
        assert not (benign_only & detected)  # and spares pure clients


#: Random flow tuples over a tiny address/time space so that repeated
#: (src, dst) pairs and identical start times occur often — the regimes
#: where first-contact dedup and tie-breaking matter.
_flow_tuples = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=5),    # src
        st.integers(min_value=100, max_value=112),  # dst
        st.booleans(),                            # acked
        st.integers(min_value=0, max_value=6),    # start time (many ties)
    ),
    min_size=0,
    max_size=80,
)


class TestVectorizedMatchesReference:
    """The array kernel must agree with the retained sequential walk."""

    @given(_flow_tuples, st.integers(min_value=0, max_value=31))
    @settings(max_examples=120, deadline=None)
    def test_walk_equivalence(self, entries, seed):
        # A seeded shuffle varies the LOG order of equal-time flows, so
        # the stable tie-break itself is exercised, not just one layout.
        rng = np.random.default_rng(seed)
        entries = [entries[i] for i in rng.permutation(len(entries))]
        log = build_log(entries)
        detector = TRWDetector()
        fast = detector.walk(log)
        slow = detector.walk_reference(log)
        assert set(fast) == set(slow)
        for source, state in fast.items():
            reference = slow[source]
            assert state.verdict == reference.verdict
            assert state.outcomes == reference.outcomes
            assert state.log_ratio == pytest.approx(reference.log_ratio)

    @given(_flow_tuples)
    @settings(max_examples=60, deadline=None)
    def test_detect_equivalence(self, entries):
        log = build_log(entries)
        detector = TRWDetector()
        reference = sorted(
            source
            for source, state in detector.walk_reference(log).items()
            if state.verdict == "scanner"
        )
        assert detector.detect(log).tolist() == reference

    def test_equal_start_time_ties_follow_log_order(self):
        # Four failures then two successes, ALL at t=0: log order is the
        # tie-break, so the walk crosses the scanner threshold before the
        # successes are ever consumed.
        entries = [(7, 100 + i, False, 0) for i in range(4)]
        entries += [(7, 200 + i, True, 0) for i in range(2)]
        detector = TRWDetector()
        fast = detector.walk(build_log(entries))
        slow = detector.walk_reference(build_log(entries))
        assert fast[7].verdict == slow[7].verdict == "scanner"
        assert fast[7].outcomes == slow[7].outcomes == 4

    def test_empty_log(self):
        detector = TRWDetector()
        assert detector.walk(FlowLog.empty()) == {}
        assert detector.detect(FlowLog.empty()).size == 0
