"""Tests for the staged artifact engine: fingerprints, store, stages."""

import dataclasses
import json
from dataclasses import make_dataclass, replace

import numpy as np
import pytest

from repro.cli import main
from repro.core.report import Report
from repro.core.scenario import PaperScenario, ScenarioConfig
from repro.core.stages import (
    SCENARIO_STAGES,
    reset_scenario_engine,
    scenario_engine,
)
from repro.engine import (
    MISS,
    ArtifactStore,
    ReportMappingCodec,
    StageEngine,
    fingerprint,
    reset_default_store,
    resolve_cache_dir,
)
from repro.experiments.common import clear_scenario_cache, default_scenario


@pytest.fixture
def isolated_store(tmp_path, monkeypatch):
    """A fresh default store over a private disk dir, restored afterwards."""
    cache_dir = tmp_path / "cache"
    monkeypatch.setenv("REPRO_CACHE_DIR", str(cache_dir))
    reset_default_store()
    reset_scenario_engine()
    clear_scenario_cache()
    yield cache_dir
    reset_default_store()
    reset_scenario_engine()
    clear_scenario_cache()


class TestFingerprint:
    def test_field_order_does_not_matter(self):
        ab = make_dataclass("Cfg", [("a", int, 1), ("b", float, 2.5)])
        ba = make_dataclass("Cfg", [("b", float, 2.5), ("a", int, 1)])
        assert fingerprint(ab()) == fingerprint(ba())

    def test_defaults_spelled_out_or_implicit(self):
        implicit = ScenarioConfig()
        explicit = ScenarioConfig(seed=20_061_001, control_size=250_000)
        assert implicit.fingerprint() == explicit.fingerprint()

    def test_any_field_change_changes_fingerprint(self):
        base = ScenarioConfig.small()
        reference = base.fingerprint()
        for change in (
            {"seed": base.seed + 1},
            {"control_size": base.control_size + 1},
            {"bot_test_size": base.bot_test_size - 1},
            {"bot_report_channels": (0, 1)},
            {"phish_test_size": 10},
        ):
            assert replace(base, **change).fingerprint() != reference

    def test_nested_config_change_changes_fingerprint(self):
        base = ScenarioConfig.small()
        changed = replace(
            base, internet=replace(base.internet, num_slash16=base.internet.num_slash16 + 1)
        )
        assert changed.fingerprint() != base.fingerprint()

    def test_same_seed_different_configs_differ(self):
        base = ScenarioConfig.small(seed=91)
        other = replace(base, control_size=5_000)
        assert base.seed == other.seed
        assert base.fingerprint() != other.fingerprint()

    def test_stable_across_calls(self):
        assert ScenarioConfig().fingerprint() == ScenarioConfig().fingerprint()

    def test_rejects_non_plain_data(self):
        with pytest.raises(TypeError):
            fingerprint(lambda: 1)

    def test_numpy_and_container_values(self):
        holder = make_dataclass("Holder", [("x", object), ("y", object)])
        a = holder(x=np.float64(1.5), y=(1, 2))
        b = holder(x=1.5, y=(1, 2))
        assert fingerprint(a) == fingerprint(b)


class TestArtifactStore:
    def test_memory_roundtrip(self):
        store = ArtifactStore(disk_dir=None)
        assert store.get("k") is MISS
        store.put("k", 42)
        assert store.get("k") == 42
        assert store.memory_hits == 1 and store.misses == 1

    def test_lru_eviction(self):
        store = ArtifactStore(max_memory_items=2, disk_dir=None)
        store.put("a", 1)
        store.put("b", 2)
        assert store.get("a") == 1  # refresh a; b is now the oldest
        store.put("c", 3)
        assert store.get("b") is MISS
        assert store.get("a") == 1 and store.get("c") == 3
        assert store.evictions == 1

    def _reports(self):
        import datetime

        return {
            "bot": Report.from_addresses(
                "bot",
                ["5.6.7.8", "5.6.7.9"],
                report_type="provided",
                data_class="bots",
                period=(datetime.date(2006, 10, 1), datetime.date(2006, 10, 14)),
            ),
            "control": Report.from_addresses("control", ["9.9.9.9"]),
        }

    def test_disk_roundtrip_preserves_reports(self, tmp_path):
        codec = ReportMappingCodec()
        writer = ArtifactStore(disk_dir=tmp_path)
        writer.put("fp/reports", self._reports(), codec)
        # A different store (fresh memory) must load from disk.
        reader = ArtifactStore(disk_dir=tmp_path)
        loaded = reader.get("fp/reports", codec)
        assert loaded is not MISS
        assert reader.disk_hits == 1
        assert loaded == self._reports()
        assert loaded["bot"].addresses.dtype == np.uint32

    def test_corrupt_disk_entry_is_a_miss(self, tmp_path):
        codec = ReportMappingCodec()
        writer = ArtifactStore(disk_dir=tmp_path)
        writer.put("fp/reports", self._reports(), codec)
        for sidecar in tmp_path.glob("*.json"):
            sidecar.write_text("{not json")
        reader = ArtifactStore(disk_dir=tmp_path)
        assert reader.get("fp/reports", codec) is MISS

    def test_version_skew_is_a_miss(self, tmp_path):
        codec = ReportMappingCodec()
        writer = ArtifactStore(disk_dir=tmp_path)
        writer.put("fp/reports", self._reports(), codec)
        for sidecar in tmp_path.glob("*.json"):
            envelope = json.loads(sidecar.read_text())
            envelope["format"] = -1
            sidecar.write_text(json.dumps(envelope))
        reader = ArtifactStore(disk_dir=tmp_path)
        assert reader.get("fp/reports", codec) is MISS

    def test_clear_and_info(self, tmp_path):
        codec = ReportMappingCodec()
        store = ArtifactStore(disk_dir=tmp_path)
        store.put("fp/reports", self._reports(), codec)
        info = store.info()
        assert info["disk_files"] == 2 and info["memory_entries"] == 1
        assert info["disk_bytes"] > 0
        removed = store.clear()
        assert removed == 2
        assert store.info()["disk_files"] == 0
        assert store.get("fp/reports", codec) is MISS

    def test_no_disk_without_codec(self, tmp_path):
        store = ArtifactStore(disk_dir=tmp_path)
        store.put("fp/internet", object())
        assert store.info()["disk_files"] == 0

    def test_cache_dir_resolution(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert resolve_cache_dir() == tmp_path
        monkeypatch.setenv("REPRO_CACHE_DIR", "")
        assert resolve_cache_dir() is None
        monkeypatch.delenv("REPRO_CACHE_DIR")
        assert resolve_cache_dir().name == "repro"


class TestStageEngine:
    def test_unknown_stage(self):
        engine = StageEngine(SCENARIO_STAGES, ArtifactStore(disk_dir=None))
        with pytest.raises(KeyError):
            engine.resolve(ScenarioConfig.small(), "nonsense")

    def test_duplicate_stage_rejected(self):
        stage = SCENARIO_STAGES[0]
        with pytest.raises(ValueError):
            StageEngine([stage, stage], ArtifactStore(disk_dir=None))

    def test_each_stage_builds_once(self, isolated_store):
        config = ScenarioConfig.small(seed=61)
        scenario = PaperScenario(config)
        _ = scenario.partition
        _ = scenario.reports
        _ = scenario.october_traffic
        counts = scenario.engine.build_counts
        for name in ("internet", "botnet", "phishing", "traffic", "reports",
                     "partition"):
            assert counts[name] == 1, name

    def test_same_seed_different_configs_do_not_thrash(self, isolated_store):
        """Regression: the old seed-keyed cache evicted on alternation."""
        config_a = ScenarioConfig.small(seed=91)
        config_b = replace(config_a, control_size=5_000)
        scenario_a = default_scenario(config_a)
        scenario_b = default_scenario(config_b)
        assert len(scenario_a.control) == 20_000
        assert len(scenario_b.control) == 5_000
        engine = scenario_engine()
        assert engine.build_counts["reports"] == 2
        for _ in range(3):  # alternating calls must not rebuild anything
            assert default_scenario(config_a) is scenario_a
            assert default_scenario(config_b) is scenario_b
            assert len(default_scenario(config_a).control) == 20_000
            assert len(default_scenario(config_b).control) == 5_000
        assert engine.build_counts["reports"] == 2
        assert engine.build_counts["internet"] == 2


class TestWarmRuns:
    def test_warm_table2_cli_runs_no_simulation(self, isolated_store, capsys):
        """Acceptance: a warm Table 2 CLI run touches no simulation stage."""
        assert main(["table2", "--small"]) == 0
        cold = capsys.readouterr().out
        cold_counts = dict(scenario_engine().build_counts)
        assert cold_counts["internet"] == 1 and cold_counts["partition"] == 1

        # Simulate a fresh process: empty memory store, same disk dir.
        reset_default_store()
        reset_scenario_engine()
        clear_scenario_cache()
        assert main(["table2", "--small"]) == 0
        warm = capsys.readouterr().out
        engine = scenario_engine()
        for name in ("internet", "botnet", "phishing", "traffic", "reports",
                     "partition"):
            assert engine.build_counts[name] == 0, name
        assert engine.store.disk_hits >= 2  # reports + partition
        assert warm == cold

    def test_warm_reports_identical_across_stores(self, isolated_store):
        config = ScenarioConfig.small(seed=17)
        cold = PaperScenario(config)
        cold_reports = cold.reports
        reset_default_store()
        reset_scenario_engine()
        warm = PaperScenario(config)
        assert warm.engine is not cold.engine
        assert warm.reports == cold_reports
        assert warm.engine.build_counts["reports"] == 0
