"""Tests for the deterministic fault-injection registry."""

import errno
import time

import pytest

from repro.engine import faults
from repro.engine.faults import (
    PROFILES,
    FaultPlan,
    FaultRule,
    FaultSpecError,
    InjectedFault,
)


@pytest.fixture(autouse=True)
def clean_plan():
    """Never leak an active plan between tests."""
    faults.reset()
    yield
    faults.reset()


class TestSpecParsing:
    def test_simple_rule(self):
        plan = FaultPlan.from_spec("store.write:enospc:every=3")
        (rule,) = plan.rules
        assert rule.site == "store.write"
        assert rule.kind == "enospc"
        assert rule.every == 3

    def test_default_kind_per_site(self):
        plan = FaultPlan.from_spec("worker.crash:every=5,times=2")
        (rule,) = plan.rules
        assert rule.kind == "crash"
        assert rule.every == 5 and rule.times == 2

    def test_multiple_rules(self):
        plan = FaultPlan.from_spec(
            "store.read:oserror:every=2;worker.fail:after=1"
        )
        assert len(plan.rules) == 2
        assert plan.rules[1].kind == "fail" and plan.rules[1].after == 1

    def test_profiles_expand(self):
        for name in PROFILES:
            plan = FaultPlan.from_spec(name)
            assert plan.rules, name

    def test_delay_parameter(self):
        plan = FaultPlan.from_spec("stage.slow:slow:delay=0.25")
        assert plan.rules[0].delay == 0.25

    @pytest.mark.parametrize(
        "spec",
        [
            "",
            "nonsense.site:oserror",
            "store.read:weird-kind",
            "store.read:oserror:every=zero",
            "store.read:oserror:bogus=1",
            "store.read:oserror:every=0",
        ],
    )
    def test_bad_specs_raise_typed_error(self, spec):
        with pytest.raises(FaultSpecError):
            FaultPlan.from_spec(spec)

    def test_bad_rule_raises(self):
        with pytest.raises(FaultSpecError):
            FaultRule(site="store.read", kind="oserror", every=0)
        with pytest.raises(FaultSpecError):
            FaultRule(site="bogus", kind="oserror")


class TestScheduling:
    def _fires(self, plan, site, calls):
        return [plan.poll(site) is not None for _ in range(calls)]

    def test_every_n_fires_on_multiples(self):
        plan = FaultPlan([FaultRule("store.read", "oserror", every=3)])
        assert self._fires(plan, "store.read", 9) == [
            False, False, True, False, False, True, False, False, True,
        ]

    def test_times_bounds_total_fires(self):
        plan = FaultPlan([FaultRule("store.read", "oserror", every=2, times=2)])
        fired = self._fires(plan, "store.read", 10)
        assert sum(fired) == 2
        assert fired[1] and fired[3]

    def test_after_skips_leading_calls(self):
        plan = FaultPlan([FaultRule("store.read", "oserror", every=1, after=3)])
        assert self._fires(plan, "store.read", 5) == [
            False, False, False, True, True,
        ]

    def test_sites_count_independently(self):
        plan = FaultPlan(
            [
                FaultRule("store.read", "oserror", every=2),
                FaultRule("store.write", "enospc", every=2),
            ]
        )
        assert plan.poll("store.read") is None
        assert plan.poll("store.write") is None
        assert plan.poll("store.read") is not None
        assert plan.poll("store.write") is not None

    def test_identical_plans_fire_identically(self):
        spec = "store.read:oserror:every=3,times=2;store.write:enospc:every=2"
        a, b = FaultPlan.from_spec(spec), FaultPlan.from_spec(spec)
        sequence = ["store.read", "store.write"] * 8
        fires_a = [a.poll(site) is not None for site in sequence]
        fires_b = [b.poll(site) is not None for site in sequence]
        assert fires_a == fires_b
        # read fires at calls 3, 6 (times=2); write at calls 2, 4, 6, 8.
        assert a.total_fired == b.total_fired == 6

    def test_seed_shifts_phase_deterministically(self):
        fired = {}
        for seed in (0, 1, 2):
            plan = FaultPlan([FaultRule("store.read", "oserror", every=3)], seed=seed)
            fired[seed] = tuple(
                plan.poll("store.read") is not None for _ in range(9)
            )
        assert len(set(fired.values())) == 3  # three distinct phases
        assert all(any(f) for f in fired.values())
        # Same seed, fresh plan: identical schedule.
        again = FaultPlan([FaultRule("store.read", "oserror", every=3)], seed=2)
        assert tuple(again.poll("store.read") is not None for _ in range(9)) == fired[2]

    def test_reset_restarts_schedule(self):
        plan = FaultPlan([FaultRule("store.read", "oserror", every=2, times=1)])
        fires = self._fires(plan, "store.read", 4)
        plan.reset()
        assert self._fires(plan, "store.read", 4) == fires


class TestActivation:
    def test_no_plan_is_a_noop(self, monkeypatch):
        monkeypatch.delenv(faults.ENV_VAR, raising=False)
        assert faults.check("store.read") is None

    def test_env_activation(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "worker.fail:every=1")
        faults.reset()
        with pytest.raises(InjectedFault):
            faults.check("worker.fail")

    def test_context_manager_overrides_and_restores(self, monkeypatch):
        monkeypatch.delenv(faults.ENV_VAR, raising=False)
        plan = FaultPlan([FaultRule("worker.fail", "fail", every=1)])
        with faults.injected(plan):
            assert faults.active_plan() is plan
            with pytest.raises(InjectedFault):
                faults.check("worker.fail")
        assert faults.active_plan() is None
        assert faults.check("worker.fail") is None


class TestCheckBehaviour:
    def test_oserror_and_enospc_carry_errno(self):
        with faults.injected(
            FaultPlan(
                [
                    FaultRule("store.read", "oserror", every=1),
                    FaultRule("store.write", "enospc", every=1),
                ]
            )
        ):
            with pytest.raises(OSError) as io_err:
                faults.check("store.read")
            assert io_err.value.errno == errno.EIO
            with pytest.raises(OSError) as full_err:
                faults.check("store.write")
            assert full_err.value.errno == errno.ENOSPC

    def test_slow_sleeps_for_delay(self):
        plan = FaultPlan([FaultRule("stage.slow", "slow", every=1, delay=0.05)])
        with faults.injected(plan):
            started = time.perf_counter()
            rule = faults.check("stage.slow")
            assert rule is not None
            assert time.perf_counter() - started >= 0.04

    def test_crash_never_kills_the_main_process(self):
        plan = FaultPlan([FaultRule("worker.crash", "crash", every=1)])
        with faults.injected(plan):
            assert faults.check("worker.crash") is None  # still alive
        assert plan.total_fired == 1  # the slot was consumed anyway

    def test_corrupt_rule_is_returned_to_the_caller(self):
        plan = FaultPlan([FaultRule("store.corrupt", "corrupt", every=1)])
        with faults.injected(plan):
            rule = faults.check("store.corrupt")
        assert rule is not None and rule.kind == "corrupt"
