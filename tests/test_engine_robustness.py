"""Fault-tolerance tests: hardened store, chaos schedules, crash safety.

The acceptance property throughout: under injected IO faults, payload
corruption and killed workers, every run either produces results
bit-identical to a fault-free baseline or raises a clean typed error —
never silently wrong numbers, and never a store that fails to reopen.
"""

import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import textwrap
import time
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.core.density import density_test
from repro.core.report import Report
from repro.core.sampling import monte_carlo
from repro.engine import faults
from repro.engine.faults import FaultPlan, FaultRule, InjectedFault
from repro.engine.store import (
    MISS,
    ArrayCodec,
    ArtifactStore,
    CorruptArtifact,
    ReportMappingCodec,
    default_store,
    reset_default_store,
    resolve_cache_dir,
    verify_entry,
)

SRC_DIR = str(Path(__file__).resolve().parents[1] / "src")


@pytest.fixture(autouse=True)
def clean_plan():
    faults.reset()
    yield
    faults.reset()


def _reports():
    return {
        "bot": Report.from_addresses(
            "bot", ["5.6.7.8", "5.6.7.9"], report_type="provided",
            data_class="bots",
        ),
        "control": Report.from_addresses("control", ["9.9.9.9"]),
    }


def _store(path, **kwargs) -> ArtifactStore:
    kwargs.setdefault("io_backoff", 0.0)
    return ArtifactStore(disk_dir=path, **kwargs)


class TestChecksums:
    def test_sidecar_carries_payload_checksum(self, tmp_path):
        _store(tmp_path).put("fp/reports", _reports(), ReportMappingCodec())
        (sidecar,) = tmp_path.glob("*.json")
        envelope = json.loads(sidecar.read_text())
        assert len(envelope["checksum"]) == 64
        verify_entry(tmp_path / sidecar.name[: -len(".json")])

    def test_bit_flip_detected_and_quarantined(self, tmp_path):
        writer = _store(tmp_path)
        writer.put("fp/reports", _reports(), ReportMappingCodec())
        (payload,) = tmp_path.glob("*.npz")
        blob = bytearray(payload.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        payload.write_bytes(bytes(blob))

        reader = _store(tmp_path)
        assert reader.get("fp/reports", ReportMappingCodec()) is MISS
        assert reader.quarantined == 1
        assert not list(tmp_path.glob("*.npz"))  # moved out of the hot path
        assert len(list((tmp_path / "quarantine").iterdir())) == 2

    def test_unparseable_sidecar_quarantined(self, tmp_path):
        writer = _store(tmp_path)
        writer.put("fp/reports", _reports(), ReportMappingCodec())
        for sidecar in tmp_path.glob("*.json"):
            sidecar.write_text("{not json")
        reader = _store(tmp_path)
        assert reader.get("fp/reports", ReportMappingCodec()) is MISS
        assert reader.quarantined == 1

    def test_injected_corruption_never_returns_wrong_data(self, tmp_path):
        plan = FaultPlan([FaultRule("store.corrupt", "corrupt", every=1)])
        with faults.injected(plan):
            writer = _store(tmp_path)
            writer.put("fp/reports", _reports(), ReportMappingCodec())
        reader = _store(tmp_path)
        assert reader.get("fp/reports", ReportMappingCodec()) is MISS


class TestOrphanSweep:
    def test_payload_without_sidecar_swept_on_init(self, tmp_path):
        writer = _store(tmp_path)
        writer.put("fp/reports", _reports(), ReportMappingCodec())
        (sidecar,) = tmp_path.glob("*.json")
        sidecar.unlink()
        reopened = _store(tmp_path)
        assert reopened.orphans_swept == 1
        assert not list(tmp_path.glob("*.npz"))

    def test_sidecar_without_payload_swept_on_init(self, tmp_path):
        writer = _store(tmp_path)
        writer.put("fp/reports", _reports(), ReportMappingCodec())
        (payload,) = tmp_path.glob("*.npz")
        payload.unlink()
        reopened = _store(tmp_path)
        assert reopened.orphans_swept == 1
        assert reopened.get("fp/reports", ReportMappingCodec()) is MISS

    def test_stale_tmp_files_removed(self, tmp_path):
        tmp_path.mkdir(exist_ok=True)
        (tmp_path / "fp.reports.npz.tmp").write_bytes(b"torn write")
        reopened = _store(tmp_path)
        assert reopened.tmp_removed == 1
        assert not list(tmp_path.glob("*.tmp"))

    def test_intact_pairs_left_alone(self, tmp_path):
        writer = _store(tmp_path)
        writer.put("fp/reports", _reports(), ReportMappingCodec())
        reopened = _store(tmp_path)
        assert reopened.orphans_swept == 0
        assert reopened.get("fp/reports", ReportMappingCodec()) == _reports()


class TestRetriesAndDegradation:
    def test_transient_read_fault_healed_by_retry(self, tmp_path):
        writer = _store(tmp_path)
        writer.put("fp/reports", _reports(), ReportMappingCodec())
        plan = FaultPlan([FaultRule("store.read", "oserror", every=1, times=1)])
        with faults.injected(plan):
            reader = _store(tmp_path)
            loaded = reader.get("fp/reports", ReportMappingCodec())
        assert loaded == _reports()
        assert reader.retries >= 1
        assert not reader.degraded

    def test_transient_write_fault_healed_by_retry(self, tmp_path):
        plan = FaultPlan([FaultRule("store.write", "enospc", every=3)])
        with faults.injected(plan):
            writer = _store(tmp_path)
            writer.put("fp/reports", _reports(), ReportMappingCodec())
        assert not writer.degraded
        assert _store(tmp_path).get("fp/reports", ReportMappingCodec()) == _reports()

    def test_persistent_write_failure_degrades_once(self, tmp_path, caplog):
        plan = FaultPlan([FaultRule("store.write", "enospc", every=1)])
        with caplog.at_level("WARNING", logger="repro.engine.store"):
            with faults.injected(plan):
                store = _store(tmp_path)
                store.put("a/x", _reports(), ReportMappingCodec())
                store.put("b/y", _reports(), ReportMappingCodec())
        assert store.degraded
        assert store.write_errors == 1  # second put skipped the disk
        warnings = [r for r in caplog.records if "degraded" in r.message]
        assert len(warnings) == 1  # warned exactly once
        # Memory layer still serves both entries.
        assert store.get("a/x") == _reports()
        assert store.get("b/y") == _reports()

    def test_degraded_store_survives_monte_carlo(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        reset_default_store()
        try:
            plan = FaultPlan([FaultRule("store.write", "enospc", every=1)])
            control = Report.from_addresses(
                "control", [f"60.0.{j}.{k}" for j in range(8) for k in range(1, 60)]
            )
            baseline = monte_carlo(
                control, 20, 12, np.random.default_rng(3), len, workers=1
            )
            with faults.injected(plan):
                survived = monte_carlo(
                    control, 20, 12, np.random.default_rng(3), len, workers=2
                )
            assert np.array_equal(baseline, survived)
        finally:
            reset_default_store()


class TestCacheDirFallback:
    def test_uncreatable_dir_falls_back_to_memory_only(self, tmp_path, monkeypatch):
        blocker = tmp_path / "blocker"
        blocker.write_text("a file where a directory must go")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(blocker / "cache"))
        assert resolve_cache_dir(ensure=True) is None
        # Without ensure, resolution stays a pure path computation.
        assert resolve_cache_dir() == blocker / "cache"

    def test_default_store_degrades_not_crashes(self, tmp_path, monkeypatch):
        blocker = tmp_path / "blocker"
        blocker.write_text("")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(blocker / "cache"))
        reset_default_store()
        try:
            store = default_store()
            assert store.disk_dir is None
            store.put("fp/reports", _reports(), ReportMappingCodec())
            assert store.get("fp/reports") == _reports()
        finally:
            reset_default_store()


class TestDoctor:
    def _seed_entries(self, tmp_path, corrupt_one=True):
        store = _store(tmp_path)
        store.put("fp/reports", _reports(), ReportMappingCodec())
        store.put("fp/chunk", np.arange(8.0), ArrayCodec())
        if corrupt_one:
            payload = tmp_path / "fp.chunk.npz"
            blob = bytearray(payload.read_bytes())
            blob[-1] ^= 0xFF
            payload.write_bytes(bytes(blob))
        return store

    def test_doctor_verifies_and_quarantines(self, tmp_path):
        store = self._seed_entries(tmp_path)
        report = store.doctor()
        assert report["entries_verified"] == 1
        assert report["entries_corrupt"] == 1
        assert report["quarantine_files"] == 2
        # A second pass is clean.
        again = store.doctor()
        assert again["entries_corrupt"] == 0
        assert again["entries_verified"] == 1

    def test_doctor_purges_quarantine(self, tmp_path):
        store = self._seed_entries(tmp_path)
        report = store.doctor(purge_quarantine=True)
        assert report["quarantine_purged"] == 2
        assert store.doctor()["quarantine_files"] == 0

    def test_cli_cache_doctor(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        reset_default_store()
        try:
            self._seed_entries(tmp_path, corrupt_one=False)
            assert main(["cache", "doctor"]) == 0
            out = capsys.readouterr().out
            assert "verified" in out and "degraded" in out
        finally:
            reset_default_store()

    def test_cli_cache_doctor_flags_corruption(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        reset_default_store()
        try:
            self._seed_entries(tmp_path, corrupt_one=True)
            assert main(["cache", "doctor"]) == 1
            assert "1 corrupt" in capsys.readouterr().out
            assert main(["cache", "doctor", "--purge-quarantine"]) == 0
        finally:
            reset_default_store()


class TestCrashConsistency:
    def test_sigkill_mid_put_reopens_clean(self, tmp_path):
        """SIGKILL between payload and sidecar rename: orphan, not damage.

        The child arms a fault that sleeps inside the put's commit
        window (payload renamed into place, sidecar not yet written);
        the parent waits for the payload to appear, SIGKILLs it, and
        asserts the store reopens, sweeps, and keeps working.
        """
        cache = tmp_path / "cache"
        cache.mkdir()
        script = textwrap.dedent(
            """
            import sys
            from pathlib import Path
            import numpy as np
            from repro.engine.store import ArrayCodec, ArtifactStore

            store = ArtifactStore(disk_dir=Path(sys.argv[1]))
            store.put("fp/chunk", np.arange(1000.0), ArrayCodec())
            """
        )
        env = dict(
            os.environ,
            PYTHONPATH=SRC_DIR + os.pathsep + os.environ.get("PYTHONPATH", ""),
            REPRO_FAULTS="store.commit:slow:every=1,delay=60",
        )
        child = subprocess.Popen(
            [sys.executable, "-c", script, str(cache)], env=env
        )
        try:
            deadline = time.monotonic() + 60
            payload = cache / "fp.chunk.npz"
            while not payload.exists():
                assert child.poll() is None, "child exited before the kill"
                assert time.monotonic() < deadline, "payload never appeared"
                time.sleep(0.02)
            os.kill(child.pid, signal.SIGKILL)
        finally:
            child.wait()

        assert payload.exists()
        assert not (cache / "fp.chunk.npz.json").exists()

        reopened = ArtifactStore(disk_dir=cache)  # must not raise
        assert reopened.orphans_swept == 1
        assert reopened.get("fp/chunk", ArrayCodec()) is MISS
        reopened.put("fp/chunk", np.arange(3.0), ArrayCodec())
        fresh = ArtifactStore(disk_dir=cache)
        assert np.array_equal(
            fresh.get("fp/chunk", ArrayCodec()), np.arange(3.0)
        )


# -- the chaos property ----------------------------------------------------

_CONTROL = Report.from_addresses(
    "control", [f"60.{i}.{j}.{k}" for i in range(2) for j in range(6) for k in range(1, 40)]
)
_BASELINE = monte_carlo(_CONTROL, 12, 6, np.random.default_rng(77), len, workers=1)

_SITE_KIND = {
    "store.read": "oserror",
    "store.write": "enospc",
    "store.corrupt": "corrupt",
    "worker.fail": "fail",
}

_rule_strategy = st.builds(
    lambda site, every, times, after: FaultRule(
        site=site, kind=_SITE_KIND[site], every=every, times=times, after=after
    ),
    site=st.sampled_from(sorted(_SITE_KIND)),
    every=st.integers(min_value=1, max_value=4),
    times=st.one_of(st.none(), st.integers(min_value=1, max_value=3)),
    after=st.integers(min_value=0, max_value=2),
)


class TestChaosProperty:
    @given(
        rules=st.lists(_rule_strategy, min_size=1, max_size=4),
        seed=st.integers(min_value=0, max_value=5),
    )
    @settings(max_examples=30, deadline=None)
    def test_any_schedule_yields_identical_results_or_typed_error(
        self, rules, seed
    ):
        """No FaultPlan can make the engine return wrong numbers."""
        plan = FaultPlan(rules, seed=seed)
        workdir = Path(tempfile.mkdtemp(prefix="repro-chaos-"))
        loaded = values = None
        try:
            try:
                with faults.injected(plan):
                    writer = _store(workdir)
                    writer.put("fp/reports", _reports(), ReportMappingCodec())
                    reader = _store(workdir)
                    loaded = reader.get("fp/reports", ReportMappingCodec())
                    values = monte_carlo(
                        _CONTROL, 12, 6, np.random.default_rng(77), len, workers=1
                    )
            except InjectedFault:
                return  # a clean, typed failure is an allowed outcome
            # The cache may miss, but it may never lie.
            assert loaded is MISS or loaded == _reports()
            assert np.array_equal(values, _BASELINE)
        finally:
            shutil.rmtree(workdir, ignore_errors=True)

    def test_warm_density_test_identical_under_io_faults(self):
        """The §4 test from a warm, fault-ridden cache: same bits."""
        rng_a, rng_b = np.random.default_rng(5), np.random.default_rng(5)
        unclean = Report.from_addresses(
            "bot", [f"60.0.{j}.{k}" for j in range(3) for k in range(1, 20)]
        )
        baseline = density_test(
            unclean, _CONTROL, rng_a, prefixes=(16, 24, 32), subsets=15
        )
        with faults.injected(FaultPlan.from_spec("io-flaky")):
            shaken = density_test(
                unclean, _CONTROL, rng_b, prefixes=(16, 24, 32), subsets=15
            )
        assert baseline.rows() == shaken.rows()
        assert baseline.hypothesis_holds() == shaken.hypothesis_holds()
