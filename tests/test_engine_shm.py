"""Tests for the shared-memory Monte-Carlo handoff."""

import os

import numpy as np
import pytest

from repro.core import cidr as rcidr
from repro.core.density import BlockCountStatistic
from repro.core.prediction import IntersectionStatistic
from repro.core.report import DataClass, Report, ReportType
from repro.core.sampling import (
    SHM_ENV,
    _prepare_shipment,
    _resolve_shipment,
    _SharedReport,
    _SharedStatistic,
    monte_carlo,
)
from repro.core.trials import TrialEnsemble
from repro.engine import shm

pytestmark = pytest.mark.skipif(
    not shm.available(), reason="no multiprocessing.shared_memory"
)


@pytest.fixture(autouse=True)
def _clean_attachments():
    yield
    shm.detach_all()


@pytest.fixture
def shm_on(monkeypatch):
    monkeypatch.setenv(SHM_ENV, "1")


def make_report(seed=1, n=5000, tag="control"):
    rng = np.random.default_rng(seed)
    addrs = np.unique(rng.integers(0, 1 << 32, n, dtype=np.uint32))
    return Report(
        tag=tag,
        addresses=addrs,
        report_type=ReportType.OBSERVED,
        data_class=DataClass.NONE,
    )


class TestSharedPack:
    def test_roundtrip_multiple_dtypes(self):
        arrays = {
            "a": np.arange(100, dtype=np.uint32),
            "b": np.linspace(0, 1, 17),
            "c": np.asarray([], dtype=np.int64),
            "d": np.ones((3, 5), dtype=np.uint8),
        }
        pack = shm.SharedPack.create(arrays)
        try:
            views = shm.attach(pack.handle)
            for key, array in arrays.items():
                assert np.array_equal(views[key], array), key
                assert views[key].dtype == array.dtype
                assert not views[key].flags.writeable
        finally:
            shm.detach_all()
            pack.unlink()

    def test_handle_is_small_and_picklable(self):
        import pickle

        big = {"matrix": np.zeros((500, 500), dtype=np.uint32)}
        pack = shm.SharedPack.create(big)
        try:
            payload = pickle.dumps(pack.handle)
            assert len(payload) < 1000  # vs ~1MB for the array itself
        finally:
            pack.unlink()

    def test_attach_is_cached_per_process(self):
        pack = shm.SharedPack.create({"x": np.arange(10)})
        try:
            first = shm.attach(pack.handle)
            second = shm.attach(pack.handle)
            assert first["x"] is second["x"]
        finally:
            shm.detach_all()
            pack.unlink()

    def test_alignment(self):
        # Mixed-width arrays must each start on an aligned offset.
        pack = shm.SharedPack.create(
            {"a": np.ones(3, dtype=np.uint8), "b": np.ones(4, dtype=np.float64)}
        )
        try:
            offsets = {key: off for key, _, _, off in pack.handle.entries}
            assert offsets["b"] % 64 == 0
            views = shm.attach(pack.handle)
            assert np.array_equal(views["b"], np.ones(4))
        finally:
            shm.detach_all()
            pack.unlink()


class TestEnsembleCodec:
    def test_roundtrip_zero_copy(self):
        control = make_report()
        ens = TrialEnsemble.draw(control, 200, 8, 999, (0,), start=3)
        pack, meta = shm.share_ensemble(ens)
        try:
            back = shm.attach_ensemble(pack.handle, meta)
            assert np.array_equal(back.matrix, ens.matrix)
            assert back.start == ens.start
            assert back.source_tag == ens.source_tag
            assert back.matrix.base is not None  # a view, not a copy
        finally:
            shm.detach_all()
            pack.unlink()


class TestShipment:
    def test_control_ships_by_handle(self, shm_on):
        control = make_report()
        stat = BlockCountStatistic(prefixes=(8, 16))
        shipped_control, shipped_stat, pack = _prepare_shipment(control, stat)
        assert pack is not None
        try:
            assert isinstance(shipped_control, _SharedReport)
            # No shared arrays on this statistic: ships as-is.
            assert shipped_stat is stat
            resolved, _ = _resolve_shipment(shipped_control, shipped_stat)
            assert np.array_equal(resolved.addresses, control.addresses)
            assert resolved.tag == control.tag
            assert resolved.report_type == control.report_type
        finally:
            shm.detach_all()
            pack.unlink()

    def test_statistic_arrays_ship_by_handle(self, shm_on):
        control = make_report()
        present = make_report(seed=2, tag="present")
        prefixes = (8, 16, 24)
        stat = IntersectionStatistic(
            prefixes=prefixes,
            present_blocks=tuple(rcidr.cidr_set(present, n) for n in prefixes),
        )
        shipped_control, shipped_stat, pack = _prepare_shipment(control, stat)
        assert pack is not None
        try:
            assert isinstance(shipped_stat, _SharedStatistic)
            # The stripped statistic pickles without the block arrays.
            import pickle

            assert len(pickle.dumps(shipped_stat)) < 2000
            _, resolved = _resolve_shipment(shipped_control, shipped_stat)
            for mine, theirs in zip(resolved.present_blocks, stat.present_blocks):
                assert np.array_equal(mine, theirs)
        finally:
            shm.detach_all()
            pack.unlink()

    def test_env_gate_disables(self, monkeypatch):
        monkeypatch.setenv(SHM_ENV, "0")
        control = make_report()
        stat = BlockCountStatistic(prefixes=(8,))
        shipped_control, shipped_stat, pack = _prepare_shipment(control, stat)
        assert pack is None
        assert shipped_control is control
        assert shipped_stat is stat


class TestMonteCarloBitIdentity:
    """The handoff transport must never change the result bits."""

    def _run(self, statistic, workers, monkeypatch, shm_env):
        monkeypatch.setenv(SHM_ENV, shm_env)
        rng = np.random.default_rng(4242)
        return monte_carlo(
            make_report(n=20_000), 800, 12, rng, statistic,
            workers=workers, checkpoint=False,
        )

    def test_blockcount_shm_vs_pickle_vs_serial(self, monkeypatch):
        stat = BlockCountStatistic(prefixes=(8, 16, 24))
        serial = self._run(stat, 1, monkeypatch, "1")
        assert np.array_equal(serial, self._run(stat, 2, monkeypatch, "1"))
        assert np.array_equal(serial, self._run(stat, 2, monkeypatch, "0"))
        assert np.array_equal(serial, self._run(stat, 3, monkeypatch, "1"))

    def test_intersection_shm_vs_pickle_vs_serial(self, monkeypatch):
        present = make_report(seed=7, tag="present")
        prefixes = (8, 16, 24)
        stat = IntersectionStatistic(
            prefixes=prefixes,
            present_blocks=tuple(rcidr.cidr_set(present, n) for n in prefixes),
        )
        serial = self._run(stat, 1, monkeypatch, "1")
        assert np.array_equal(serial, self._run(stat, 2, monkeypatch, "1"))
        assert np.array_equal(serial, self._run(stat, 2, monkeypatch, "0"))

    def test_no_leaked_segments(self, monkeypatch):
        stat = BlockCountStatistic(prefixes=(8,))
        self._run(stat, 2, monkeypatch, "1")
        leaked = [
            name
            for name in os.listdir("/dev/shm")
            if name.startswith("psm_")
        ] if os.path.isdir("/dev/shm") else []
        assert leaked == []

    def test_worker_crash_recovery_under_shm(self, monkeypatch):
        stat = BlockCountStatistic(prefixes=(8, 16))
        clean = self._run(stat, 2, monkeypatch, "1")
        monkeypatch.setenv("REPRO_FAULTS", "worker.crash:every=1,times=2")
        crashed = self._run(stat, 2, monkeypatch, "1")
        assert np.array_equal(clean, crashed)
