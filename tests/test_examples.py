"""Smoke tests: every shipped example must run to completion.

Examples are the adoption surface; these tests execute each one's
``main()`` in-process (stdout captured by pytest) so API drift breaks the
build instead of the README.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

EXAMPLES = [
    "quickstart",
    "blocklist_prediction",
    "virtual_blocking",
    "uncleanliness_scores",
    "cnc_sinkhole",
    "weekly_tracking",
    "scan_detector_comparison",
]


def _load(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def test_all_examples_present():
    found = {p.stem for p in EXAMPLES_DIR.glob("*.py")}
    assert found == set(EXAMPLES)


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name, capsys):
    module = _load(name)
    module.main()
    out = capsys.readouterr().out
    assert len(out) > 100  # every example narrates its result
