"""Tests for the experiment modules (figures and tables)."""

import numpy as np
import pytest

from repro.experiments import (
    ablation,
    figure2,
    figure3,
    figure4,
    figure5,
    table1,
    table2,
    table3,
)
from repro.experiments.common import render_table

SUBSETS = 60


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(777)


class TestRenderTable:
    def test_alignment(self):
        text = render_table([{"a": 1, "bb": "x"}, {"a": 100, "bb": "y"}])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert "bb" in lines[0]
        assert len(lines) == 3

    def test_empty(self):
        assert render_table([]) == "(no rows)"

    def test_explicit_columns(self):
        text = render_table([{"a": 1, "b": 2}], columns=["b"])
        assert "a" not in text.splitlines()[0]

    def test_float_formatting(self):
        assert "0.1235" in render_table([{"x": 0.123456}])


class TestFigure2:
    def test_result_claims(self, small_scenario, rng):
        result = figure2.run(small_scenario, rng, subsets=SUBSETS, naive_subsets=10)
        assert result.naive_overdisperses()
        assert result.naive_doubles_per_bit()
        assert result.bot_densest()

    def test_rows_cover_band(self, small_scenario, rng):
        result = figure2.run(small_scenario, rng, subsets=10, naive_subsets=5)
        assert [row["prefix"] for row in result.rows()] == list(range(16, 33))

    def test_format(self, small_scenario, rng):
        result = figure2.run(small_scenario, rng, subsets=10, naive_subsets=5)
        text = figure2.format_result(result)
        assert "Figure 2" in text
        assert "naive" in text


class TestFigure3:
    def test_all_panels_hold(self, small_scenario, rng):
        result = figure3.run(small_scenario, rng, subsets=SUBSETS)
        assert set(result.panels) == set(figure3.REPORT_TAGS)
        assert result.all_hold()

    def test_summary_rows(self, small_scenario, rng):
        result = figure3.run(small_scenario, rng, subsets=10)
        rows = result.summary_rows()
        assert {row["report"] for row in rows} == set(figure3.REPORT_TAGS)

    def test_format(self, small_scenario, rng):
        result = figure3.run(small_scenario, rng, subsets=10)
        assert "Figure 3" in figure3.format_result(result)


class TestFigure4:
    @pytest.fixture(scope="class")
    def result(self, small_scenario):
        return figure4.run(
            small_scenario, np.random.default_rng(778), subsets=SUBSETS
        )

    def test_bot_spam_scan_predicted(self, result):
        assert result.bot_spam_scan_predicted()

    def test_phishing_not_predicted(self, result):
        assert result.phishing_not_predicted()

    def test_summary_has_paper_ranges(self, result):
        rows = result.summary_rows()
        by_target = {row["target"]: row for row in rows}
        assert by_target["bot"]["paper_range"] == (20, 25)
        assert by_target["phish-present"]["paper_range"] == "-"

    def test_format(self, result):
        text = figure4.format_result(result)
        assert "Figure 4" in text
        assert "phishing NOT predicted: True" in text


class TestFigure5:
    def test_phishing_self_predicts(self, small_scenario, rng):
        result = figure5.run(small_scenario, rng, subsets=SUBSETS)
        assert result.phishing_self_predicts()
        assert "Figure 5" in figure5.format_result(result)


class TestTable1:
    def test_rows_and_ordering(self, small_scenario):
        result = table1.run(small_scenario)
        assert len(result.rows()) == 6
        assert result.size_ordering_matches()
        assert "Table 1" in table1.format_result(result)

    def test_paper_sizes_attached(self, small_scenario):
        rows = {row["tag"]: row for row in table1.run(small_scenario).rows()}
        assert rows["bot"]["paper_size"] == 621_861
        assert rows["control"]["paper_size"] == 46_899_928


class TestTable2:
    def test_partition_shape(self, small_scenario):
        result = table2.run(small_scenario)
        assert result.partition_shape_matches()
        assert result.blocked_slash24s > 0
        assert 0 < result.space_utilisation < 1
        assert "Table 2" in table2.format_result(result)

    def test_row_tags(self, small_scenario):
        tags = [row["tag"] for row in table2.run(small_scenario).rows()]
        assert tags == ["unclean", "candidate", "hostile", "unknown", "innocent"]


class TestTable3:
    def test_shape_claims(self, small_scenario):
        result = table3.run(small_scenario)
        assert result.monotone()
        assert result.high_tp_rate()
        assert result.fp_vanishes_at_long_prefixes()
        assert result.tp_rate_at_24_unknown_hostile() >= result.tp_rate_at_24()

    def test_rows_have_paper_columns(self, small_scenario):
        rows = table3.run(small_scenario).rows()
        assert rows[0]["n"] == 24
        assert rows[0]["paper_TP"] == 287
        assert "Table 3" in table3.format_result(table3.run(small_scenario))


class TestAblations:
    def test_tail_ablation_clustering_grows_with_heavier_tail(self):
        rows = ablation.uncleanliness_tail_ablation(alphas=(0.15, 1.2), seed=23)
        heavy, flat = rows[0], rows[1]
        assert heavy["density_ratio@/24"] > flat["density_ratio@/24"]

    def test_report_age_ablation_robust_across_ages(self):
        rows = ablation.report_age_ablation(gaps_days=(150, 7), seed=23)
        # Networks stay unclean: even a five-month-old report predicts.
        assert all(row["predictive_prefixes"] > 0 for row in rows)

    def test_estimator_ablation_naive_gap_larger(self, small_scenario):
        rows = ablation.estimator_ablation(small_scenario)
        for row in rows:
            if row["prefix"] <= 24:
                assert row["gap_vs_naive"] >= row["gap_vs_empirical"]

    def test_prefix_band_rows(self, small_scenario):
        rows = ablation.prefix_band_ablation(small_scenario, subsets=30)
        assert [row["prefix"] for row in rows] == list(range(16, 33))
        assert any(row["better_predictor"] for row in rows)

    def test_evasion_ablation_erodes_fine_prediction(self):
        rows = ablation.evasion_ablation(strengths=(0.0, 1.0), seed=29)
        none, full = rows[0], rows[1]
        assert full["intersection@/24"] < none["intersection@/24"]
        assert full["predictive_prefixes"] > 0  # /16 signal survives

    def test_clustering_ablation_verdict_and_spread(self):
        rows = ablation.clustering_ablation(
            deaggregation_probabilities=(0.5,), seed=31, subsets=20
        )
        assert all(row["bots_cluster"] for row in rows)
        hetero = [r for r in rows if r["partitioning"] == "clusters(p=0.5)"]
        assert hetero[0]["size_spread"] == "256x"

    def test_field_stability_controls_temporal_prediction(self):
        rows = ablation.field_stability_ablation(stabilities=(1.0, 0.0), seed=37)
        frozen, memoryless = rows[0], rows[1]
        assert frozen["spatial_holds"] and memoryless["spatial_holds"]
        assert frozen["predictive_prefixes"] > memoryless["predictive_prefixes"]
        assert memoryless["predictive_prefixes"] <= 2

    def test_format_rows(self):
        assert "title" in ablation.format_rows("title", [{"a": 1}])
