"""Fast tests for the Figure 1 experiment (tiny configuration)."""

import pytest

from repro.experiments import figure1
from repro.experiments.common import clear_scenario_cache, default_scenario
from repro.flows.generator import TrafficConfig
from repro.sim.botnet import BotnetConfig
from repro.sim.internet import InternetConfig


@pytest.fixture(scope="module")
def result():
    config = figure1.Figure1Config(
        internet=InternetConfig(num_slash16=40),
        botnet=BotnetConfig(daily_compromises=25.0, num_channels=6),
        traffic=TrafficConfig(
            benign_clients_per_day=30,
            scan_participation=0.5,
            suspicious_hosts=100,
        ),
    )
    return figure1.run(config)


class TestFigure1:
    def test_weekly_series_cover_jan_to_april(self, result):
        assert len(result.weeks) == 17
        assert len(result.unique_scanners) == 17
        assert result.weeks[0].dates()[0].month == 1
        assert result.weeks[-1].dates()[1].month == 4

    def test_report_week_is_early_march(self, result):
        week = result.weeks[result.report_week]
        assert week.dates()[0].month in (2, 3)

    def test_block_overlay_dominates(self, result):
        assert result.block_overlay_dominates()

    def test_overlap_bounded_by_report(self, result):
        assert max(result.bot_address_overlap) <= result.report_size
        assert max(result.bot_block_overlap) <= result.report_size

    def test_activity_drops_after_report(self, result):
        assert result.activity_drops_after_report()

    def test_rows_mark_report_week(self, result):
        rows = result.rows()
        marks = [row["report"] for row in rows if row["report"]]
        assert marks == ["<-- report"]

    def test_format_contains_claims(self, result):
        text = figure1.format_result(result)
        assert "peak overlap fraction" in text
        assert "activity drops after report" in text


class TestScenarioCache:
    def test_default_scenario_cached_by_config(self):
        from repro.core.scenario import ScenarioConfig

        clear_scenario_cache()
        config = ScenarioConfig.small(seed=91)
        first = default_scenario(config)
        second = default_scenario(config)
        assert first is second

    def test_different_config_rebuilds(self):
        from dataclasses import replace

        from repro.core.scenario import ScenarioConfig

        clear_scenario_cache()
        config = ScenarioConfig.small(seed=92)
        first = default_scenario(config)
        changed = replace(config, bot_test_size=50)
        second = default_scenario(changed)
        assert first is not second
        clear_scenario_cache()
