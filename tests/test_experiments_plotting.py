"""Unit tests for the terminal plotting helpers."""

import pytest

from repro.experiments.plotting import horizontal_bars, series_panel, sparkline


class TestSparkline:
    def test_monotone_series(self):
        assert sparkline([0, 1, 2, 3]) == "▁▃▆█"

    def test_flat_zero_series(self):
        assert sparkline([0, 0, 0]) == "▁▁▁"

    def test_empty(self):
        assert sparkline([]) == ""

    def test_shared_maximum(self):
        # With a larger external maximum the same series renders lower.
        assert sparkline([1, 2], maximum=8) != sparkline([1, 2])

    def test_length_matches_input(self):
        assert len(sparkline(range(17))) == 17


class TestHorizontalBars:
    def test_rendering(self):
        text = horizontal_bars(
            [{"k": "aa", "v": 2}, {"k": "b", "v": 1}], "k", "v", width=4
        )
        lines = text.splitlines()
        assert lines[0].startswith("aa  ████")
        assert lines[1].startswith("b   ██")

    def test_empty(self):
        assert horizontal_bars([], "k", "v") == "(no rows)"

    def test_zero_values(self):
        text = horizontal_bars([{"k": "a", "v": 0}], "k", "v", width=4)
        assert "█" not in text


class TestSeriesPanel:
    def test_multiple_series_aligned(self):
        text = series_panel({"long name": [1, 2], "s": [2, 1]})
        lines = text.splitlines()
        # Sparklines start at the same column despite label widths.
        assert lines[0].index("▅") == lines[1].index("█")
        assert "[1 .. 2]" in lines[0]

    def test_shared_scale(self):
        independent = series_panel({"a": [1], "b": [10]})
        shared = series_panel({"a": [1], "b": [10]}, shared_scale=True)
        assert independent != shared

    def test_empty_series(self):
        assert "(empty)" in series_panel({"a": []})

    def test_no_series(self):
        assert series_panel({}) == "(no series)"
