"""Pinned fingerprints and artifact checksums of the default worlds.

These constants are the bit-identity contract of the AS-substrate
refactor: every new config knob is a fingerprint *addendum* (omitted
from the canonical form at its default) and every new random draw is
gated on a non-default value, so the default and small worlds — their
cache keys AND their simulated artifacts — are byte-for-byte what they
were before the refactor.  If one of these assertions fails, a change
has silently invalidated every pre-existing artifact cache; either gate
the new behaviour properly or (last resort) bump STORE_FORMAT_VERSION
and re-pin with a written justification here.
"""

import hashlib

import numpy as np

from repro.core.scenario import ScenarioConfig
from repro.engine.store import STORE_FORMAT_VERSION
from repro.scenarios import get_pack

#: The paper-scale default config, pinned before the AS refactor.
DEFAULT_FINGERPRINT = "21f6941dea4a3dc3c4d479fef99ac558"

#: ScenarioConfig.small(), pinned before the AS refactor.
SMALL_FINGERPRINT = "f9262b582a13ca3d4a188a4c9e4b28d0"

#: sha256 over the small scenario's reports (sorted tags, raw address
#: bytes) — proves the *simulated data*, not just the cache key, is
#: unchanged.
SMALL_REPORTS_CHECKSUM = (
    "ad1f234d830248662e3644a3ff92e6269a8c508c4f2b9bf03d61ece87da1c66b"
)


def test_default_fingerprint_pinned():
    assert ScenarioConfig().fingerprint() == DEFAULT_FINGERPRINT


def test_small_fingerprint_pinned():
    assert ScenarioConfig.small().fingerprint() == SMALL_FINGERPRINT


def test_small_reports_checksum_pinned(small_scenario):
    digest = hashlib.sha256()
    for tag in sorted(small_scenario.reports):
        addresses = small_scenario.reports[tag].addresses
        digest.update(tag.encode())
        digest.update(np.ascontiguousarray(addresses).tobytes())
    assert digest.hexdigest() == SMALL_REPORTS_CHECKSUM


def test_paper_default_pack_is_the_default_world():
    # The identity pack must not re-key the default world's cache.
    assert get_pack("paper-default").build().fingerprint() == DEFAULT_FINGERPRINT
    assert (
        get_pack("paper-default").build(small=True).fingerprint()
        == SMALL_FINGERPRINT
    )


def test_store_format_version_unchanged():
    # The AS refactor adds no codec or layout changes; existing caches
    # must stay readable.  Bump only with a layout change that cannot be
    # expressed as a fingerprint addendum, and re-pin the constants
    # above when you do.
    assert STORE_FORMAT_VERSION == 3


def test_addendum_fields_omitted_at_default():
    # The mechanism behind the pins: a config differing from the default
    # only in addendum fields *at their defaults* fingerprints the same.
    from dataclasses import replace

    config = ScenarioConfig()
    same = replace(config, bot_feed_dark_from_day=-1, bot_feed_stale_days=0)
    assert same.fingerprint() == DEFAULT_FINGERPRINT
    changed = replace(config, bot_feed_dark_from_day=280, bot_feed_stale_days=5)
    assert changed.fingerprint() != DEFAULT_FINGERPRINT
