"""Tests for the sharded fleet supervisor and the clearinghouse."""

import numpy as np
import pytest

from repro.core import folds
from repro.core.uncleanliness import UncleanlinessScorer
from repro.engine import faults
from repro.engine.store import ArtifactStore
from repro.fleet import (
    Clearinghouse,
    FleetConfig,
    FleetFailure,
    FleetSupervisor,
    NetworkShard,
    QuorumError,
    ShardFeed,
    delivery_checksum,
    heterogeneous_fleet,
    synthetic_reports,
)
from repro.fleet.shard import FLEET_FEED_TAGS


@pytest.fixture(autouse=True)
def quiet_faults():
    """Run each test under an empty plan so the chaos CI legs' env
    profiles cannot perturb determinism-sensitive assertions; tests
    that want the env profile call ``faults.reset()`` themselves."""
    faults.reset()
    with faults.injected(faults.FaultPlan([])):
        yield
    faults.reset()


def small_fleet(count=3, **policy):
    return heterogeneous_fleet(count, seed=7, small=True, **policy)


def run_synthetic(config, **kwargs):
    kwargs.setdefault("runner", synthetic_reports)
    kwargs.setdefault("checkpoint", False)
    return FleetSupervisor(config, **kwargs).run()


def reference_scores(feeds, prefix_len=24):
    """Pool feeds directly through the scorer (the fleet-free path)."""
    class_reports = {}
    for tag, cls in folds.CLASS_OF_TAG.items():
        merged = np.unique(
            np.concatenate([f.reports[tag].addresses for f in feeds])
        )
        template = feeds[0].reports[tag]
        class_reports[cls] = type(template)(
            tag=tag,
            addresses=merged,
            report_type=template.report_type,
            data_class=template.data_class,
            period=template.period,
        )
    weights = dict(folds.DEFAULT_CLASS_WEIGHTS)
    scorer = UncleanlinessScorer(prefix_len=prefix_len, weights=weights)
    return scorer.score(class_reports)


# -- configuration ---------------------------------------------------------


class TestFleetConfig:
    def test_heterogeneous_fleet_shapes(self):
        config = small_fleet(4)
        assert [s.name for s in config.shards] == [
            "net-a", "net-b", "net-c", "net-d",
        ]
        # One shared world, many vantage points.
        assert len({s.config.seed for s in config.shards}) == 1
        assert len({s.config.fingerprint() for s in config.shards}) == 4
        for shard in config.shards:
            shard.config.validate()

    def test_duplicate_names_rejected(self):
        shard = small_fleet(1).shards[0]
        config = FleetConfig(shards=(shard, shard))
        with pytest.raises(ValueError, match="duplicate"):
            config.validate()

    def test_bad_shard_name_rejected(self):
        with pytest.raises(ValueError, match="bad shard name"):
            NetworkShard(name="has/slash", config=small_fleet(1).shards[0].config)

    def test_quorum_bounds(self):
        config = small_fleet(2, quorum=3)
        with pytest.raises(ValueError, match="quorum"):
            config.validate()

    def test_fingerprint_ignores_execution_policy(self):
        base = small_fleet(2)
        tweaked = small_fleet(2, workers=4, max_retries=5, deadline=9.0)
        assert base.fingerprint() == tweaked.fingerprint()
        other = heterogeneous_fleet(2, seed=8, small=True)
        assert base.fingerprint() != other.fingerprint()


# -- supervisor: happy path and determinism --------------------------------


class TestSupervisor:
    def test_serial_run_delivers_all_shards(self):
        result = run_synthetic(small_fleet(3))
        assert result.ok == ("net-a", "net-b", "net-c")
        assert result.quarantined == ()
        assert not result.degraded
        for outcome in result.outcomes:
            assert outcome.attempts == 1
            assert not outcome.from_checkpoint
            assert outcome.checksum

    def test_pooled_scores_match_direct_scorer(self):
        result = run_synthetic(small_fleet(3))
        pooled = result.clearinghouse.pooled_scores()
        expected = reference_scores(result.clearinghouse.feeds)
        np.testing.assert_array_equal(pooled.blocks, expected.blocks)
        np.testing.assert_array_equal(pooled.scores, expected.scores)

    def test_scheduling_order_never_changes_results(self):
        config = small_fleet(3)
        reversed_config = FleetConfig(shards=tuple(reversed(config.shards)))
        pooled = run_synthetic(config).clearinghouse.pooled_scores()
        swapped = run_synthetic(reversed_config).clearinghouse.pooled_scores()
        np.testing.assert_array_equal(pooled.blocks, swapped.blocks)
        np.testing.assert_array_equal(pooled.scores, swapped.scores)

    def test_single_feed_pool_matches_local_view(self):
        result = run_synthetic(small_fleet(2))
        ch = result.clearinghouse
        solo = Clearinghouse([ch.feed("net-a")])
        np.testing.assert_array_equal(
            solo.pooled_scores().scores, ch.local_scores("net-a").scores
        )

    def test_checkpoint_resume_skips_completed_shards(self, tmp_path):
        config = small_fleet(2)
        store = ArtifactStore(disk_dir=tmp_path / "cache")
        first = FleetSupervisor(
            config, runner=synthetic_reports, store=store
        ).run()
        resumed = FleetSupervisor(
            config, runner=synthetic_reports, store=store
        ).run()
        for outcome in resumed.outcomes:
            assert outcome.from_checkpoint
            assert outcome.attempts == 0
        np.testing.assert_array_equal(
            first.clearinghouse.pooled_scores().scores,
            resumed.clearinghouse.pooled_scores().scores,
        )

    def test_checkpoint_namespace_separates_runners(self, tmp_path):
        config = small_fleet(1)
        store = ArtifactStore(disk_dir=tmp_path / "cache")
        synthetic = FleetSupervisor(config, runner=synthetic_reports, store=store)
        scenario = FleetSupervisor(config, store=store)
        assert synthetic.fingerprint != scenario.fingerprint
        assert synthetic.checkpoint_key("net-a") != scenario.checkpoint_key("net-a")

    def test_delivery_checksum_detects_tampering(self):
        reports = synthetic_reports(small_fleet(1).shards[0], FLEET_FEED_TAGS)
        digest = delivery_checksum(reports)
        tampered = dict(reports)
        bad = reports["bot"].addresses.copy()
        bad[0] ^= np.uint32(1)
        tampered["bot"] = type(reports["bot"])(
            tag="bot", addresses=bad, period=reports["bot"].period
        )
        assert delivery_checksum(tampered) != digest


# -- failure isolation -----------------------------------------------------


def _failing_runner(shard, feed_tags):
    """A runner whose 'net-b' member network is permanently down."""
    if shard.name == "net-b":
        raise RuntimeError("member network offline")
    return synthetic_reports(shard, feed_tags)


#: Networks currently suffering an outage for :func:`_flaky_runner`.
#: Module state (not a closure) so the runner keeps one checkpoint
#: namespace across the outage and the recovery.
_OUTAGE = set()


def _flaky_runner(shard, feed_tags):
    if shard.name in _OUTAGE:
        raise RuntimeError("member network offline")
    return synthetic_reports(shard, feed_tags)


class TestFailureIsolation:
    def test_failing_shard_is_quarantined_not_fatal(self):
        config = small_fleet(3, backoff=0.0)
        result = run_synthetic(config, runner=_failing_runner)
        assert result.quarantined == ("net-b",)
        assert result.ok == ("net-a", "net-c")
        outcome = result.outcome("net-b")
        assert outcome.attempts == config.max_retries + 1
        assert "offline" in outcome.error

    def test_degraded_manifest_names_the_shard(self):
        result = run_synthetic(small_fleet(3, backoff=0.0), runner=_failing_runner)
        manifest = result.manifest()
        assert manifest["clearinghouse"]["quarantined"] == ["net-b"]
        assert manifest["clearinghouse"]["degraded"] is True
        assert manifest["shards"]["net-b"]["status"] == "quarantined"

    def test_degraded_pool_converges_on_recovery(self, tmp_path):
        config = small_fleet(3, backoff=0.0)
        store = ArtifactStore(disk_dir=tmp_path / "cache")
        faultfree = run_synthetic(config)

        # net-b is down: pooled scores cover the two live feeds only.
        _OUTAGE.add("net-b")
        try:
            degraded = FleetSupervisor(
                config, runner=_flaky_runner, store=store
            ).run()
        finally:
            _OUTAGE.clear()
        assert degraded.quarantined == ("net-b",)
        partial = degraded.clearinghouse.pooled_scores(allow_partial=True)
        expected = reference_scores(
            [f for f in faultfree.clearinghouse.feeds if f.name != "net-b"]
        )
        np.testing.assert_array_equal(partial.scores, expected.scores)

        # net-b recovers: the re-run resumes net-a/net-c from their
        # checkpoints, retries net-b, and converges to fault-free.
        recovered = FleetSupervisor(
            config, runner=_flaky_runner, store=store
        ).run()
        assert recovered.quarantined == ()
        assert recovered.outcome("net-a").from_checkpoint
        assert not recovered.outcome("net-b").from_checkpoint
        np.testing.assert_array_equal(
            recovered.clearinghouse.pooled_scores().scores,
            faultfree.clearinghouse.pooled_scores().scores,
        )

    def test_all_shards_failing_raises_typed_error(self):
        config = small_fleet(2, max_retries=0, backoff=0.0)

        def everything_burns(shard, feed_tags):
            raise RuntimeError("no survivors")

        with pytest.raises(FleetFailure, match="2 shard"):
            FleetSupervisor(
                config, runner=everything_burns, checkpoint=False
            ).run()

    def test_quorum_policy_raises_typed_error(self):
        config = small_fleet(3, quorum=3, backoff=0.0)
        result = run_synthetic(config, runner=_failing_runner)
        with pytest.raises(QuorumError, match="quorum"):
            result.clearinghouse.pooled_scores()
        # Explicit opt-in to the degraded view still works.
        partial = result.clearinghouse.pooled_scores(allow_partial=True)
        assert len(partial.scores)


# -- staleness policy ------------------------------------------------------


class TestStaleness:
    def _feeds(self):
        config = small_fleet(3)
        result = run_synthetic(config)
        return list(result.clearinghouse.feeds)

    def test_stale_feed_excluded_and_named(self):
        feeds = self._feeds()
        lagging = feeds[1]
        feeds[1] = ShardFeed(
            name=lagging.name, reports=lagging.reports,
            as_of=lagging.as_of - 10,
        )
        ch = Clearinghouse(feeds, max_staleness_days=3)
        assert ch.stale == (lagging.name,)
        assert ch.degraded
        assert lagging.name not in [f.name for f in ch.available]
        pooled = ch.pooled_scores()
        expected = reference_scores([feeds[0], feeds[2]])
        np.testing.assert_array_equal(pooled.scores, expected.scores)

    def test_fresh_enough_feed_included(self):
        feeds = self._feeds()
        lagging = feeds[1]
        feeds[1] = ShardFeed(
            name=lagging.name, reports=lagging.reports,
            as_of=lagging.as_of - 2,
        )
        ch = Clearinghouse(feeds, max_staleness_days=3)
        assert ch.stale == ()
        assert not ch.degraded

    def test_availability_rows_cover_every_member(self):
        result = run_synthetic(small_fleet(3, backoff=0.0), runner=_failing_runner)
        rows = result.clearinghouse.availability()
        status = {row["network"]: row["status"] for row in rows}
        assert status == {
            "net-a": "fresh", "net-b": "quarantined", "net-c": "fresh",
        }


# -- pool mode -------------------------------------------------------------


class TestPoolMode:
    def test_pool_run_matches_serial(self):
        config = small_fleet(3)
        serial = run_synthetic(config).clearinghouse.pooled_scores()
        pooled = run_synthetic(
            small_fleet(3, workers=2)
        ).clearinghouse.pooled_scores()
        np.testing.assert_array_equal(serial.scores, pooled.scores)

    def test_deadline_timeouts_quarantine_not_hang(self):
        # Every attempt sleeps past the deadline; the supervisor must
        # abandon the pool each round and finish with a typed failure
        # (all shards quarantined), never block on the hung workers.
        config = small_fleet(
            2, workers=2, deadline=0.25, max_retries=1, backoff=0.0
        )
        plan = faults.FaultPlan.from_spec("shard.slow:every=1,delay=30")
        with faults.injected(plan):
            with pytest.raises(FleetFailure):
                FleetSupervisor(
                    config, runner=synthetic_reports, checkpoint=False
                ).run()


# -- under the environment's fault profile ---------------------------------


class TestUnderEnvProfile:
    def test_fleet_green_or_typed_under_env_faults(self):
        """Whatever REPRO_FAULTS profile the CI leg activates, a fleet
        run either matches the fault-free pooled scores, degrades to a
        self-consistent subset, or fails with the typed error."""
        config = small_fleet(3, backoff=0.0)
        faultfree = run_synthetic(config)
        reference = {
            feed.name: feed for feed in faultfree.clearinghouse.feeds
        }

        faults.reset()  # let the environment profile (if any) apply
        try:
            result = run_synthetic(config)
        except FleetFailure:
            return  # typed, never silent
        finally:
            faults.reset()

        available = [feed.name for feed in result.clearinghouse.available]
        assert available, "a completed run pools at least one feed"
        for feed in result.clearinghouse.available:
            np.testing.assert_array_equal(
                feed.reports["bot"].addresses,
                reference[feed.name].reports["bot"].addresses,
            )
        pooled = result.clearinghouse.pooled_scores(allow_partial=True)
        expected = reference_scores([reference[name] for name in available])
        np.testing.assert_array_equal(pooled.scores, expected.scores)
        if not result.quarantined:
            np.testing.assert_array_equal(
                pooled.scores,
                faultfree.clearinghouse.pooled_scores().scores,
            )


# -- real scenario integration --------------------------------------------


class TestScenarioFleet:
    def test_real_small_fleet_end_to_end(self, artifact_cache):
        from repro import api

        config = heterogeneous_fleet(2, seed=7, small=True)
        result = api.run_fleet(config)
        assert result.quarantined == ()
        ch = result.clearinghouse
        for tag in FLEET_FEED_TAGS:
            pooled = ch.pooled_report(tag)
            assert len(pooled) >= max(
                len(feed.reports[tag]) for feed in ch.feeds
            )
        # Cross-network prediction: net-b's old botnet vs net-a's space.
        prediction = api.fleet_prediction_test(
            result, "net-a", subsets=25, prefixes=(20, 24)
        )
        assert set(prediction.prefixes) == {20, 24}
        again = api.fleet_prediction_test(
            result, "net-a", subsets=25, prefixes=(20, 24)
        )
        assert prediction.observed == again.observed
        assert prediction.exceedance == again.exceedance
        # Pooled density test runs and is deterministic.
        density = api.fleet_density_test(result, subsets=25, prefixes=(24,))
        repeat = api.fleet_density_test(result, subsets=25, prefixes=(24,))
        assert density.observed == repeat.observed
