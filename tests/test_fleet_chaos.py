"""Chaos tests: the fleet under injected shard faults.

The contract under test is the supervisor's determinism guarantee:
whatever fault schedule fires — crashes, slowness, corruption — a fleet
run either produces pooled scores bit-identical to the fault-free run
(possibly over a degraded feed subset), or fails with a typed
:class:`FleetError`.  Never a silently different answer.
"""

import os

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine import faults
from repro.fleet import (
    FleetConfig,
    FleetError,
    FleetFailure,
    FleetSupervisor,
    heterogeneous_fleet,
    synthetic_reports,
)
from repro.obs import metrics as obs_metrics


@pytest.fixture(autouse=True)
def quiet_faults():
    """Isolate every test from the CI leg's REPRO_FAULTS profile; tests
    inject their own plans explicitly."""
    faults.reset()
    with faults.injected(faults.FaultPlan([])):
        yield
    faults.reset()


def small_fleet(count=3, **policy):
    policy.setdefault("backoff", 0.0)
    return heterogeneous_fleet(count, seed=7, small=True, **policy)


def run_synthetic(config):
    return FleetSupervisor(
        config, runner=synthetic_reports, checkpoint=False
    ).run()


@pytest.fixture(scope="module")
def faultfree_scores():
    faults.reset()
    with faults.injected(faults.FaultPlan([])):
        result = run_synthetic(small_fleet(3))
    return result.clearinghouse.pooled_scores()


# -- corruption ------------------------------------------------------------


class TestCorruption:
    def test_corrupt_delivery_detected_and_retried(self, faultfree_scores):
        obs_metrics.reset()
        plan = faults.FaultPlan.from_spec("shard.corrupt:every=1,times=1")
        with faults.injected(plan):
            result = run_synthetic(small_fleet(3))
        assert result.quarantined == ()
        # The first shard needed a second attempt; the checksum caught it.
        assert result.outcome("net-a").attempts == 2
        corrupt = obs_metrics.registry().get("fleet.shard.corrupt")
        assert corrupt is not None and corrupt.value >= 1
        np.testing.assert_array_equal(
            result.clearinghouse.pooled_scores().scores,
            faultfree_scores.scores,
        )

    def test_corruption_every_round_is_typed_failure(self):
        # The schedule outlasts the retry budget on every shard: the
        # supervisor must refuse to pool tampered data.
        plan = faults.FaultPlan.from_spec("shard.corrupt:every=1")
        with faults.injected(plan):
            with pytest.raises(FleetFailure, match="shard"):
                run_synthetic(small_fleet(2, max_retries=1))

    def test_profile_schedule_recovers_bit_identical(self, faultfree_scores):
        # The CI profile fires every third poll — inside the default
        # 3-round budget, so the fleet always recovers.
        plan = faults.FaultPlan.from_spec("shard-corrupt")
        with faults.injected(plan):
            result = run_synthetic(small_fleet(3))
        assert result.quarantined == ()
        assert any(outcome.retried for outcome in result.outcomes)
        np.testing.assert_array_equal(
            result.clearinghouse.pooled_scores().scores,
            faultfree_scores.scores,
        )


# -- slowness --------------------------------------------------------------


class TestSlowness:
    def test_slow_without_deadline_is_only_slow(self, faultfree_scores):
        plan = faults.FaultPlan.from_spec("shard.slow:every=2,delay=0.01")
        with faults.injected(plan):
            result = run_synthetic(small_fleet(3))
        assert result.quarantined == ()
        np.testing.assert_array_equal(
            result.clearinghouse.pooled_scores().scores,
            faultfree_scores.scores,
        )

    def test_slow_past_deadline_is_typed_failure(self):
        # Fork-mode workers inherit the active plan, so every retry is
        # equally slow; the supervisor must abandon each hung pool at
        # the deadline and end with the typed failure, not a hang.
        config = small_fleet(2, workers=2, deadline=0.25, max_retries=1)
        plan = faults.FaultPlan.from_spec("shard.slow:every=1,delay=30")
        with faults.injected(plan):
            with pytest.raises(FleetFailure):
                run_synthetic(config)
        timeouts = obs_metrics.registry().get("fleet.shard.timeouts")
        assert timeouts is not None and timeouts.value >= 1


# -- worker crashes --------------------------------------------------------


def _crash_once_runner(shard, feed_tags):
    """Hard-exit the worker on first attempt per shard, succeed after.

    The sentinel lives on disk (path via REPRO_TEST_CRASH_DIR) because
    the crash kills the process — no in-memory flag survives it.
    """
    sentinel_dir = os.environ["REPRO_TEST_CRASH_DIR"]
    sentinel = os.path.join(sentinel_dir, f"crashed-{shard.name}")
    if not os.path.exists(sentinel):
        with open(sentinel, "w") as handle:
            handle.write("1")
        os._exit(3)
    return synthetic_reports(shard, feed_tags)


class TestWorkerCrash:
    def test_pool_survives_worker_crash(
        self, tmp_path, monkeypatch, faultfree_scores
    ):
        monkeypatch.setenv("REPRO_TEST_CRASH_DIR", str(tmp_path))
        obs_metrics.reset()
        config = small_fleet(3, workers=2)
        result = FleetSupervisor(
            config, runner=_crash_once_runner, checkpoint=False
        ).run()
        assert result.quarantined == ()
        assert all(outcome.attempts >= 2 for outcome in result.outcomes)
        crashes = obs_metrics.registry().get("fleet.shard.crashes")
        assert crashes is not None and crashes.value >= 1
        np.testing.assert_array_equal(
            result.clearinghouse.pooled_scores().scores,
            faultfree_scores.scores,
        )

    def test_injected_shard_crash_profile_in_pool(self, faultfree_scores):
        # The CI profile: every third shard.crash poll hard-exits the
        # worker.  Retry rounds outpace the schedule, so the fleet
        # completes bit-identical.
        config = small_fleet(3, workers=2)
        plan = faults.FaultPlan.from_spec("shard-crash")
        with faults.injected(plan):
            result = run_synthetic(config)
        np.testing.assert_array_equal(
            result.clearinghouse.pooled_scores().scores,
            faultfree_scores.scores,
        )


# -- property: any schedule, identical or typed ----------------------------


def _rule(site, every, times, after):
    return faults.FaultRule(
        site=site,
        kind=faults._DEFAULT_KIND[site],
        every=every,
        times=times,
        after=after,
        delay=0.001,
    )


RULE = st.builds(
    _rule,
    site=st.sampled_from(["shard.fail", "shard.slow", "shard.corrupt"]),
    every=st.integers(min_value=1, max_value=4),
    times=st.one_of(st.none(), st.integers(min_value=1, max_value=3)),
    after=st.integers(min_value=0, max_value=3),
)


class TestFaultScheduleProperty:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(rules=st.lists(RULE, min_size=1, max_size=3))
    def test_any_schedule_yields_identical_or_typed(
        self, rules, faultfree_scores
    ):
        config = small_fleet(3)
        plan = faults.FaultPlan(rules)
        try:
            with faults.injected(plan):
                result = run_synthetic(config)
        except FleetError:
            return  # typed failure is an allowed outcome
        # Whatever was delivered must be exactly the fault-free data:
        # full fleets score bit-identically, degraded fleets pool a
        # strict subset whose feeds are still bit-identical.
        reference = run_synthetic(config)
        for feed in result.clearinghouse.available:
            expected = reference.clearinghouse.feed(feed.name)
            for tag, report in feed.reports.items():
                np.testing.assert_array_equal(
                    report.addresses, expected.reports[tag].addresses
                )
        if not result.quarantined:
            np.testing.assert_array_equal(
                result.clearinghouse.pooled_scores().scores,
                reference.clearinghouse.pooled_scores().scores,
            )
