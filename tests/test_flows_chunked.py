"""Tests for the out-of-core chunked flow-log layer."""

import numpy as np
import pytest

from repro.detect.scan import ScanDetector, ScanDetectorConfig
from repro.detect.spam import SpamDetector, SpamDetectorConfig
from repro.detect.trw import TRWDetector
from repro.engine.store import MISS, ArtifactMissing, ArtifactStore
from repro.flows.chunked import ChunkedFlowLog, FlowChunkCodec, _split_points
from repro.flows.log import COLUMN_DTYPES, FlowLog


def make_flows(n=20_000, seed=3, days=3.0):
    rng = np.random.default_rng(seed)
    start = np.sort(rng.uniform(0.0, days * 86_400.0, n))
    if n > 300:
        start[200:300] = start[200]  # equal-time tie run
    return FlowLog(
        src_addr=rng.integers(0, 200, n, dtype=np.uint32),
        dst_addr=rng.integers(0, 500, n, dtype=np.uint32),
        src_port=rng.integers(1024, 65535, n).astype(np.uint16),
        dst_port=np.where(
            rng.random(n) < 0.3, 25, rng.integers(1, 1024, n)
        ).astype(np.uint16),
        protocol=np.where(rng.random(n) < 0.8, 6, 17).astype(np.uint8),
        packets=rng.integers(1, 10, n).astype(np.uint32),
        octets=rng.integers(40, 1500, n).astype(np.uint64),
        tcp_flags=np.where(rng.random(n) < 0.5, 16, 2).astype(np.uint8),
        start_time=start,
        end_time=start + 1.0,
    )


def assert_logs_equal(a: FlowLog, b: FlowLog):
    assert len(a) == len(b)
    for name in COLUMN_DTYPES:
        assert np.array_equal(a.column(name), b.column(name)), name


class TestSplitPoints:
    def test_empty(self):
        assert _split_points(np.asarray([], dtype=float), 10, True) == []

    def test_size_bound(self):
        times = np.zeros(25)
        points = _split_points(times, 10, day_bounded=False)
        assert points == [10, 20, 25]

    def test_day_cuts(self):
        times = np.asarray([0.0, 10.0, 86_400.0, 86_500.0, 2 * 86_400.0])
        assert _split_points(times, 100, day_bounded=True) == [2, 4, 5]

    def test_day_cuts_and_size_bound_compose(self):
        times = np.concatenate([np.zeros(7), np.full(2, 86_400.0)])
        assert _split_points(times, 3, day_bounded=True) == [3, 6, 7, 9]

    def test_positional_cover(self):
        times = np.sort(np.random.default_rng(0).uniform(0, 5e5, 997))
        points = _split_points(times, 100, day_bounded=True)
        assert points[-1] == 997
        assert all(b > a for a, b in zip(points, points[1:]))


class TestCodec:
    def test_roundtrip(self, tmp_path):
        store = ArtifactStore(disk_dir=tmp_path)
        flows = make_flows(500)
        store.put("x/flowchunk-00000", flows, FlowChunkCodec())
        back = store.get("x/flowchunk-00000", FlowChunkCodec())
        assert back is not MISS
        assert_logs_equal(back, flows)


class TestStoreBackend:
    def test_roundtrip_and_lengths(self, tmp_path):
        store = ArtifactStore(disk_dir=tmp_path)
        flows = make_flows()
        chunked = ChunkedFlowLog.spill(flows, "w/0", store=store, max_flows=3000)
        assert len(chunked) == len(flows)
        assert chunked.chunk_count >= len(flows) // 3000
        assert chunked.nbytes > 0
        assert_logs_equal(chunked.materialize(), flows)

    def test_streaming_reads_bypass_lru(self, tmp_path):
        store = ArtifactStore(disk_dir=tmp_path)
        chunked = ChunkedFlowLog.spill(
            make_flows(), "w/0", store=store, max_flows=2000
        )
        for _ in chunked.iter_chunks():
            pass
        assert store.info()["memory_entries"] == 0

    def test_windowed_selection(self, tmp_path):
        store = ArtifactStore(disk_dir=tmp_path)
        flows = make_flows()
        chunked = ChunkedFlowLog.spill(flows, "w/0", store=store, max_flows=2500)
        lo, hi = 0.5 * 86_400.0, 1.75 * 86_400.0
        assert_logs_equal(
            chunked.materialize(lo, hi), flows.in_time_range(lo, hi)
        )
        # open-ended windows
        assert_logs_equal(
            chunked.materialize(start=lo),
            flows.in_time_range(lo, float("inf")),
        )
        assert_logs_equal(
            chunked.materialize(end=hi),
            flows.in_time_range(float("-inf"), hi),
        )

    def test_windowed_iteration_skips_chunks(self, tmp_path):
        store = ArtifactStore(disk_dir=tmp_path)
        flows = make_flows(days=4.0)
        chunked = ChunkedFlowLog.spill(flows, "w/0", store=store, max_flows=2000)
        narrow = list(chunked.iter_chunks(0.0, 3600.0))
        assert 0 < len(narrow) < chunked.chunk_count

    def test_info_counters(self, tmp_path):
        store = ArtifactStore(disk_dir=tmp_path)
        chunked = ChunkedFlowLog.spill(
            make_flows(5000), "w/0", store=store, max_flows=1000
        )
        info = store.info()
        assert info["flow_chunks"] == chunked.chunk_count
        assert info["flow_chunk_bytes"] > 0
        assert chunked.info()["backend"] == "store"
        chunked.drop()
        assert store.info()["flow_chunks"] == 0

    def test_missing_chunk_raises(self, tmp_path):
        store = ArtifactStore(disk_dir=tmp_path)
        chunked = ChunkedFlowLog.spill(
            make_flows(2000), "w/0", store=store, max_flows=500
        )
        store.clear()
        with pytest.raises(ArtifactMissing):
            list(chunked.iter_chunks())

    def test_memory_only_store_keeps_chunks_resident(self):
        store = ArtifactStore(disk_dir=None)
        flows = make_flows(3000)
        chunked = ChunkedFlowLog.spill(flows, "w/0", store=store, max_flows=700)
        assert chunked.info()["resident_chunks"] == chunked.chunk_count
        assert_logs_equal(chunked.materialize(), flows)

    def test_spill_chunks_streaming_writer(self, tmp_path):
        store = ArtifactStore(disk_dir=tmp_path)
        flows = make_flows(3000)
        day = (flows.start_time // 86_400.0).astype(np.int64)
        parts = [flows.select(day == d) for d in np.unique(day)]
        chunked = ChunkedFlowLog.spill_chunks(iter(parts), "w/0", store=store)
        assert chunked.chunk_count == len(parts)
        assert_logs_equal(chunked.materialize(), flows)


class TestMmapBackend:
    def test_roundtrip(self, tmp_path):
        flows = make_flows()
        ChunkedFlowLog.spill_to_dir(flows, tmp_path / "mm", max_flows=3000)
        reopened = ChunkedFlowLog.open_dir(tmp_path / "mm")
        assert_logs_equal(reopened.materialize(), flows)
        assert reopened.info()["backend"] == "mmap"

    def test_chunks_are_memory_mapped(self, tmp_path):
        flows = make_flows(2000)
        chunked = ChunkedFlowLog.spill_to_dir(flows, tmp_path / "mm", max_flows=600)
        chunk = chunked.chunk(0)
        assert isinstance(chunk.src_addr, np.memmap) or isinstance(
            chunk.src_addr.base, np.memmap
        )

    def test_windowed(self, tmp_path):
        flows = make_flows()
        chunked = ChunkedFlowLog.spill_to_dir(flows, tmp_path / "mm", max_flows=2500)
        lo, hi = 86_400.0, 2 * 86_400.0
        assert_logs_equal(
            chunked.materialize(lo, hi), flows.in_time_range(lo, hi)
        )


class TestDetectorEquivalence:
    """The streaming partial-aggregate folds are bit-identical to the
    in-memory detectors for any chunking of the window."""

    @pytest.fixture(scope="class")
    def flows(self):
        return make_flows(40_000, seed=17)

    @pytest.fixture(scope="class")
    def detectors(self):
        return (
            ScanDetector(ScanDetectorConfig(min_targets=5, min_failed_fraction=0.3)),
            TRWDetector(),
            SpamDetector(
                SpamDetectorConfig(
                    min_messages=5, min_daily_rate=1.0, max_size_cv=5.0
                )
            ),
        )

    def test_chunked_log_matches(self, tmp_path, flows, detectors):
        store = ArtifactStore(disk_dir=tmp_path)
        for max_flows, day_bounded in [(977, True), (7000, False), (60_000, True)]:
            chunked = ChunkedFlowLog.spill(
                flows,
                f"eq/{max_flows}-{day_bounded}",
                store=store,
                max_flows=max_flows,
                day_bounded=day_bounded,
            )
            for det in detectors:
                whole = det.detect(flows)
                assert whole.size  # the fixtures actually flag something
                assert np.array_equal(det.detect_chunked(chunked), whole)
            chunked.drop()

    def test_random_ragged_splits_match(self, flows, detectors):
        rng = np.random.default_rng(23)
        n = len(flows)
        for _ in range(3):
            cuts = np.sort(
                rng.choice(np.arange(1, n), size=rng.integers(1, 25), replace=False)
            )
            parts, prev = [], 0
            for cut in [*cuts.tolist(), n]:
                mask = np.zeros(n, dtype=bool)
                mask[prev:cut] = True
                parts.append(flows.select(mask))
                prev = cut
            for det in detectors:
                assert np.array_equal(
                    det.detect_chunked(parts), det.detect(flows)
                )

    def test_empty_chunks_are_harmless(self, flows, detectors):
        empty = FlowLog.empty()
        half = np.zeros(len(flows), dtype=bool)
        half[: len(flows) // 2] = True
        parts = [empty, flows.select(half), empty, flows.select(~half), empty]
        for det in detectors:
            assert np.array_equal(det.detect_chunked(parts), det.detect(flows))

    def test_mmap_backend_matches(self, tmp_path, flows, detectors):
        chunked = ChunkedFlowLog.spill_to_dir(
            flows, tmp_path / "mm", max_flows=9000
        )
        for det in detectors:
            assert np.array_equal(det.detect_chunked(chunked), det.detect(flows))
