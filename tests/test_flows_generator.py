"""Unit tests for the border traffic generator."""

import numpy as np
import pytest

from repro.flows.generator import TrafficConfig, TrafficGenerator
from repro.flows.record import Protocol, TCPFlags
from repro.sim.timeline import DAY_SECONDS, PAPER_WINDOWS


class TestConfig:
    def test_defaults_valid(self):
        TrafficConfig().validate()

    @pytest.mark.parametrize(
        "field,value",
        [
            ("num_servers", 0),
            ("num_mail_servers", 0),
            ("num_mail_servers", 99),
            ("scan_participation", 1.5),
            ("suspicious_hosts", -1),
        ],
    )
    def test_invalid_rejected(self, field, value):
        from dataclasses import replace

        with pytest.raises(ValueError):
            replace(TrafficConfig(num_servers=10), **{field: value}).validate()


class TestServers:
    def test_servers_inside_observed_network(self, tiny_internet, tiny_botnet):
        generator = TrafficGenerator(tiny_internet, tiny_botnet)
        for server in generator.server_addresses():
            assert tiny_internet.is_observed(int(server))

    def test_mail_servers_are_prefix_of_servers(self, tiny_internet, tiny_botnet):
        generator = TrafficGenerator(tiny_internet, tiny_botnet)
        servers = generator.server_addresses()
        mail = generator.mail_server_addresses()
        assert list(mail) == list(servers[: len(mail)])


class TestGenerate:
    def test_populations_present(self, tiny_traffic):
        assert set(tiny_traffic.populations) == {
            "benign",
            "fast_scanners",
            "spammers",
            "slow_scanners",
            "ephemeral",
            "suspicious",
            "cnc",
        }

    def test_all_flows_inbound(self, tiny_traffic, tiny_internet):
        # Every source is external, every destination internal.
        src_octets = tiny_traffic.flows.src_addr >> 24
        dst_octets = tiny_traffic.flows.dst_addr >> 24
        observed = tiny_internet.config.observed_octet
        assert (src_octets != observed).all()
        assert (dst_octets == observed).all()

    def test_flows_within_window(self, tiny_traffic):
        window = tiny_traffic.window
        start = tiny_traffic.flows.start_time
        assert (start >= window.start_second).all()
        assert (start < window.end_second + 3600).all()  # bursts spill an hour

    def test_sources_match_ground_truth(self, tiny_traffic):
        all_truth = np.concatenate(list(tiny_traffic.populations.values()))
        log_sources = tiny_traffic.flows.unique_sources()
        assert set(log_sources.tolist()) == set(np.unique(all_truth).tolist())

    def test_benign_flows_payload_bearing(self, tiny_traffic):
        benign = tiny_traffic.ground_truth("benign")
        hostile = np.concatenate(
            [tiny_traffic.ground_truth(k) for k in
             ("fast_scanners", "spammers", "slow_scanners", "ephemeral", "suspicious")]
        )
        pure_benign = np.setdiff1d(benign, hostile)
        flows = tiny_traffic.flows.from_sources(pure_benign)
        assert flows.payload_bearing_mask().all()

    def test_fast_scanners_sweep_in_an_hour(self, tiny_traffic):
        scanners = tiny_traffic.ground_truth("fast_scanners")
        others = np.concatenate(
            [tiny_traffic.ground_truth(k) for k in
             ("benign", "spammers", "slow_scanners", "ephemeral", "suspicious")]
        )
        pure = np.setdiff1d(scanners, others)
        if pure.size == 0:
            pytest.skip("no pure fast scanner in tiny sample")
        flows = tiny_traffic.flows.from_sources(pure[:1])
        hours = (flows.start_time // 3600).astype(np.int64)
        best = max(
            np.unique(flows.dst_addr[hours == h]).size for h in np.unique(hours)
        )
        assert best >= 30  # above the detector floor

    def test_slow_scanners_stay_under_30_per_day(self, tiny_traffic):
        slow = np.setdiff1d(
            tiny_traffic.ground_truth("slow_scanners"),
            np.concatenate([
                tiny_traffic.ground_truth("fast_scanners"),
                tiny_traffic.ground_truth("benign"),
                tiny_traffic.ground_truth("spammers"),
                tiny_traffic.ground_truth("ephemeral"),
                tiny_traffic.ground_truth("suspicious"),
            ]),
        )
        if slow.size == 0:
            pytest.skip("no pure slow scanner in tiny sample")
        flows = tiny_traffic.flows.from_sources(slow)
        days = (flows.start_time // DAY_SECONDS).astype(np.int64)
        for source in slow[:10]:
            mine = flows.select(flows.src_addr == source)
            mine_days = (mine.start_time // DAY_SECONDS).astype(np.int64)
            for day in np.unique(mine_days):
                targets = np.unique(mine.dst_addr[mine_days == day]).size
                assert targets < 30

    def test_scan_flows_never_payload_bearing(self, tiny_traffic):
        flows = tiny_traffic.flows
        syn_only = flows.select((flows.tcp_flags == TCPFlags.SYN))
        assert not syn_only.payload_bearing_mask().any()

    def test_spam_flows_hit_mail_servers(self, tiny_traffic, tiny_internet, tiny_botnet):
        generator = TrafficGenerator(tiny_internet, tiny_botnet)
        mail = set(generator.mail_server_addresses().tolist())
        flows = tiny_traffic.flows
        smtp = flows.select(
            (flows.dst_port == 25) & flows.payload_bearing_mask()
        )
        spammers = set(tiny_traffic.ground_truth("spammers").tolist())
        smtp_from_spammers = smtp.select(
            np.isin(smtp.src_addr, np.asarray(sorted(spammers), dtype=np.uint32))
        )
        if len(smtp_from_spammers):
            assert set(smtp_from_spammers.dst_addr.tolist()) <= mail

    def test_ephemeral_flows_have_no_payload(self, tiny_traffic):
        flows = tiny_traffic.flows
        high_high = flows.select(
            (flows.src_port >= 1024) & (flows.dst_port >= 1024)
            & ((flows.tcp_flags & TCPFlags.PSH) == 0)
            & (flows.protocol == Protocol.TCP)
            & ((flows.tcp_flags & TCPFlags.ACK) != 0)
        )
        assert (high_high.payload_bytes() == 0).all()

    def test_deterministic_given_seed(self, tiny_internet, tiny_botnet):
        from repro.sim.timeline import Window

        config = TrafficConfig(benign_clients_per_day=20, suspicious_hosts=50)
        generator = TrafficGenerator(tiny_internet, tiny_botnet, config)
        window = Window(270, 276)
        a = generator.generate(window, np.random.default_rng(9))
        b = generator.generate(window, np.random.default_rng(9))
        assert np.array_equal(a.flows.src_addr, b.flows.src_addr)
        assert np.array_equal(a.flows.octets, b.flows.octets)

    def test_suspicious_disabled(self, tiny_internet, tiny_botnet, rng):
        from repro.sim.timeline import Window

        config = TrafficConfig(benign_clients_per_day=10, suspicious_hosts=0)
        generator = TrafficGenerator(tiny_internet, tiny_botnet, config)
        traffic = generator.generate(Window(270, 272), rng)
        assert traffic.ground_truth("suspicious").size == 0


class TestAllQuietWindow:
    """Regression: a capture with zero flows must still build a schema-
    correct FlowLog (empty populations used to contribute float64
    ``np.asarray([])`` columns)."""

    @pytest.fixture()
    def quiet_traffic(self, tiny_internet, tiny_botnet, rng):
        config = TrafficConfig(
            benign_clients_per_day=0,
            scan_participation=0.0,
            spam_participation=0.0,
            slow_scanner_fraction=0.0,
            ephemeral_fraction=0.0,
            suspicious_hosts=0,
        )
        generator = TrafficGenerator(tiny_internet, tiny_botnet, config)
        return generator.generate(PAPER_WINDOWS.OCTOBER, rng)

    def test_no_flows_and_no_ground_truth(self, quiet_traffic):
        assert len(quiet_traffic.flows) == 0
        assert all(v.size == 0 for v in quiet_traffic.populations.values())

    def test_empty_columns_keep_schema_dtypes(self, quiet_traffic):
        from repro.flows.log import COLUMN_DTYPES

        for name, dtype in COLUMN_DTYPES.items():
            assert quiet_traffic.flows.column(name).dtype == np.dtype(dtype), name

    def test_empty_log_queryable(self, quiet_traffic):
        # The empty log must survive the standard query surface.
        flows = quiet_traffic.flows
        assert flows.unique_sources().size == 0
        assert flows.payload_bearing_mask().size == 0
        assert len(flows.tcp_only()) == 0


class TestColumnDtypes:
    def test_generated_log_matches_schema(self, tiny_traffic):
        from repro.flows.log import COLUMN_DTYPES

        for name, dtype in COLUMN_DTYPES.items():
            assert tiny_traffic.flows.column(name).dtype == np.dtype(dtype), name
