"""Unit and property tests for the shared columnar kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flows.kernels import (
    grouped_cumsum,
    repeat_offsets,
    sample_day_segments,
    segment_first_true,
    segment_ids,
    segment_positions,
)


class TestOffsets:
    def test_repeat_offsets(self):
        assert list(repeat_offsets(np.asarray([2, 0, 3]))) == [0, 2, 2, 5]

    def test_segment_ids(self):
        assert list(segment_ids(np.asarray([2, 0, 3]))) == [0, 0, 2, 2, 2]

    def test_segment_positions(self):
        assert list(segment_positions(np.asarray([2, 0, 3]))) == [0, 1, 0, 1, 2]

    def test_empty(self):
        empty = np.asarray([], dtype=np.int64)
        assert repeat_offsets(empty).tolist() == [0]
        assert segment_ids(empty).size == 0
        assert segment_positions(empty).size == 0


class TestSampleDaySegments:
    def test_requests_respected(self):
        rng = np.random.default_rng(0)
        lo = np.asarray([10, 20, 30])
        hi = np.asarray([19, 24, 29])  # lengths 10, 5, 0 (empty range)
        counts = np.asarray([4, 9, 3])
        owners, days = sample_day_segments(lo, hi, counts, rng)
        assert (np.bincount(owners, minlength=3) == [4, 5, 0]).all()
        for i in range(3):
            mine = days[owners == i]
            assert np.unique(mine).size == mine.size  # distinct
            assert ((mine >= lo[i]) & (mine <= hi[i])).all()

    def test_zero_count_contributes_nothing(self):
        rng = np.random.default_rng(1)
        owners, days = sample_day_segments(
            np.asarray([0]), np.asarray([13]), np.asarray([0]), rng
        )
        assert owners.size == 0 and days.size == 0

    def test_all_empty(self):
        rng = np.random.default_rng(2)
        owners, days = sample_day_segments(
            np.asarray([5, 9]), np.asarray([4, 8]), np.asarray([3, 3]), rng
        )
        assert owners.size == 0 and days.size == 0

    def test_no_events(self):
        rng = np.random.default_rng(3)
        empty = np.asarray([], dtype=np.int64)
        owners, days = sample_day_segments(empty, empty, empty, rng)
        assert owners.size == 0 and days.size == 0

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            sample_day_segments(
                np.asarray([0]), np.asarray([1, 2]), np.asarray([1]),
                np.random.default_rng(0),
            )

    def test_deterministic_per_seed(self):
        lo = np.zeros(50, dtype=np.int64)
        hi = np.full(50, 13, dtype=np.int64)
        counts = np.full(50, 4, dtype=np.int64)
        a = sample_day_segments(lo, hi, counts, np.random.default_rng(7))
        b = sample_day_segments(lo, hi, counts, np.random.default_rng(7))
        assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])

    def test_uniform_coverage(self):
        # Over many draws of 1 day from [0, 13], every day appears.
        lo = np.zeros(2000, dtype=np.int64)
        hi = np.full(2000, 13, dtype=np.int64)
        counts = np.ones(2000, dtype=np.int64)
        _, days = sample_day_segments(lo, hi, counts, np.random.default_rng(8))
        assert np.unique(days).size == 14

    @given(st.lists(
        st.tuples(
            st.integers(min_value=-5, max_value=20),   # lo
            st.integers(min_value=0, max_value=15),    # range length - 1 offset
            st.integers(min_value=0, max_value=20),    # requested count
        ),
        min_size=0, max_size=30,
    ))
    @settings(max_examples=60, deadline=None)
    def test_matches_per_event_semantics(self, spec):
        """Per event: exactly min(count, range length) distinct in-range days."""
        lo = np.asarray([s[0] for s in spec], dtype=np.int64)
        hi = np.asarray([s[0] + s[1] - 3 for s in spec], dtype=np.int64)
        counts = np.asarray([s[2] for s in spec], dtype=np.int64)
        owners, days = sample_day_segments(lo, hi, counts, np.random.default_rng(9))
        per_owner = np.bincount(owners, minlength=lo.size) if lo.size else []
        for i, got in enumerate(per_owner):
            length = max(0, hi[i] - lo[i] + 1)
            assert got == min(counts[i], length)
            mine = days[owners == i]
            assert np.unique(mine).size == mine.size
            if mine.size:
                assert mine.min() >= lo[i] and mine.max() <= hi[i]


class TestGroupedCumsum:
    def test_matches_python_loop(self):
        rng = np.random.default_rng(10)
        counts = np.asarray([3, 1, 5, 2])
        starts = repeat_offsets(counts)[:-1]
        values = rng.integers(-5, 6, size=int(counts.sum()))
        got = grouped_cumsum(values, starts, counts)
        expected = np.concatenate(
            [np.cumsum(values[s:s + c]) for s, c in zip(starts, counts)]
        )
        assert np.array_equal(got, expected)

    def test_integer_exact(self):
        counts = np.asarray([4])
        got = grouped_cumsum(np.asarray([1, 1, 1, 1]), np.asarray([0]), counts)
        assert got.dtype.kind == "i"
        assert got.tolist() == [1, 2, 3, 4]

    def test_empty(self):
        empty = np.asarray([], dtype=np.int64)
        assert grouped_cumsum(empty, empty, empty).size == 0


class TestSegmentFirstTrue:
    def test_matches_python_loop(self):
        rng = np.random.default_rng(11)
        counts = np.asarray([4, 2, 6, 1, 3])
        starts = repeat_offsets(counts)[:-1]
        mask = rng.random(int(counts.sum())) < 0.3
        got = segment_first_true(mask, starts, counts)
        for i, (start, count) in enumerate(zip(starts, counts)):
            segment = mask[start:start + count]
            hits = np.flatnonzero(segment)
            expected = hits[0] if hits.size else count
            assert got[i] == expected

    def test_no_true_returns_count(self):
        counts = np.asarray([3])
        got = segment_first_true(
            np.asarray([False, False, False]), np.asarray([0]), counts
        )
        assert got.tolist() == [3]

    def test_empty(self):
        empty = np.asarray([], dtype=np.int64)
        assert segment_first_true(np.asarray([], dtype=bool), empty, empty).size == 0
