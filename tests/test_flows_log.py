"""Unit tests for repro.flows.log."""

import numpy as np
import pytest

from repro.flows.log import FlowBatch, FlowLog
from repro.flows.record import FlowRecord, Protocol, TCPFlags

ACKED = TCPFlags.SYN | TCPFlags.ACK | TCPFlags.PSH


def sample_log():
    batch = FlowBatch()
    # src, dst, sport, dport, proto, packets, octets, flags, start
    batch.add(100, 1, 40000, 80, Protocol.TCP, 10, 2000, ACKED, 10.0, 12.0)
    batch.add(100, 2, 40001, 80, Protocol.TCP, 3, 156, TCPFlags.SYN, 20.0)
    batch.add(200, 1, 40002, 25, Protocol.TCP, 8, 1500, ACKED, 30.0)
    batch.add(300, 3, 40003, 53, Protocol.UDP, 2, 200, 0, 40.0)
    return FlowLog.from_batches([batch])


class TestConstruction:
    def test_from_batches_length(self):
        assert len(sample_log()) == 4

    def test_empty(self):
        log = FlowLog.empty()
        assert len(log) == 0
        assert log.unique_sources().size == 0

    def test_missing_column_rejected(self):
        with pytest.raises(ValueError):
            FlowLog(src_addr=np.asarray([1]))

    def test_mismatched_lengths_rejected(self):
        columns = {name: np.asarray([1]) for name in (
            "src_addr", "dst_addr", "src_port", "dst_port", "protocol",
            "packets", "octets", "tcp_flags", "start_time",
        )}
        columns["end_time"] = np.asarray([1.0, 2.0])
        with pytest.raises(ValueError):
            FlowLog(**columns)

    def test_from_records_round_trip(self):
        log = sample_log()
        rebuilt = FlowLog.from_records(list(log))
        assert np.array_equal(rebuilt.src_addr, log.src_addr)
        assert np.array_equal(rebuilt.octets, log.octets)

    def test_concat(self):
        log = sample_log()
        doubled = log.concat(log)
        assert len(doubled) == 2 * len(log)

    def test_columns_read_only(self):
        log = sample_log()
        with pytest.raises(ValueError):
            log.src_addr[0] = 0

    def test_record_scalar_view(self):
        record = sample_log().record(0)
        assert isinstance(record, FlowRecord)
        assert record.src_addr == 100
        assert record.is_payload_bearing


class TestDerived:
    def test_payload_bytes(self):
        log = sample_log()
        assert list(log.payload_bytes()) == [1600, 36, 1180, 120]

    def test_payload_bearing_mask(self):
        log = sample_log()
        # Flow 1: SYN-only (no ACK); flow 3: UDP.
        assert list(log.payload_bearing_mask()) == [True, False, True, False]

    def test_payload_bearing_matches_scalar(self):
        log = sample_log()
        mask = log.payload_bearing_mask()
        for i in range(len(log)):
            assert mask[i] == log.record(i).is_payload_bearing

    def test_payload_bearing_sources(self):
        assert list(sample_log().payload_bearing_sources()) == [100, 200]


class TestFilters:
    def test_select(self):
        log = sample_log()
        sub = log.select(log.src_addr == 100)
        assert len(sub) == 2

    def test_select_bad_mask(self):
        with pytest.raises(ValueError):
            sample_log().select(np.asarray([True]))

    def test_tcp_only(self):
        assert len(sample_log().tcp_only()) == 3

    def test_in_time_range(self):
        log = sample_log()
        assert len(log.in_time_range(15.0, 35.0)) == 2

    def test_time_range_is_half_open(self):
        log = sample_log()
        assert len(log.in_time_range(10.0, 20.0)) == 1

    def test_from_sources(self):
        log = sample_log()
        sub = log.from_sources(np.asarray([100, 300], dtype=np.uint32))
        assert set(sub.src_addr.tolist()) == {100, 300}

    def test_from_sources_empty(self):
        log = sample_log()
        assert len(log.from_sources(np.asarray([], dtype=np.uint32))) == 0


class TestAggregates:
    def test_unique_sources(self):
        assert list(sample_log().unique_sources()) == [100, 200, 300]

    def test_unique_destinations(self):
        assert list(sample_log().unique_destinations()) == [1, 2, 3]

    def test_fanout_by_source(self):
        assert sample_log().fanout_by_source() == {100: 2, 200: 1, 300: 1}

    def test_fanout_counts_distinct_destinations(self):
        batch = FlowBatch()
        for _ in range(5):
            batch.add(7, 9, 1, 2, Protocol.TCP, 1, 40, 0, 0.0)
        log = FlowLog.from_batches([batch])
        assert log.fanout_by_source() == {7: 1}

    def test_fanout_empty(self):
        assert FlowLog.empty().fanout_by_source() == {}
