"""Unit tests for repro.flows.record."""

import pytest

from repro.flows.record import (
    HEADER_BYTES_PER_PACKET,
    PAYLOAD_BEARING_MIN_BYTES,
    FlowRecord,
    Protocol,
    TCPFlags,
)


def make(protocol=Protocol.TCP, packets=10, octets=1000, flags=TCPFlags.ACK, **kwargs):
    defaults = dict(
        src_addr=1,
        dst_addr=2,
        src_port=40000,
        dst_port=80,
        protocol=protocol,
        packets=packets,
        octets=octets,
        tcp_flags=flags,
        start_time=0.0,
        end_time=1.0,
    )
    defaults.update(kwargs)
    return FlowRecord(**defaults)


class TestValidation:
    def test_zero_packets_rejected(self):
        with pytest.raises(ValueError):
            make(packets=0)

    def test_bytes_below_packets_rejected(self):
        with pytest.raises(ValueError):
            make(packets=10, octets=5)

    def test_time_travel_rejected(self):
        with pytest.raises(ValueError):
            make(start_time=10.0, end_time=5.0)

    def test_duration(self):
        assert make(start_time=2.0, end_time=5.5).duration == 3.5


class TestPayload:
    def test_payload_estimate(self):
        flow = make(packets=10, octets=1000)
        assert flow.payload_bytes == 1000 - 10 * HEADER_BYTES_PER_PACKET

    def test_payload_floor_zero(self):
        assert make(packets=3, octets=100).payload_bytes == 0

    def test_syn_scan_artifact(self):
        # §6.1: a 3-packet SYN scan with TCP options shows 36 bytes of
        # apparent payload — exactly at the threshold, but no ACK.
        flow = make(packets=3, octets=156, flags=TCPFlags.SYN)
        assert flow.payload_bytes == PAYLOAD_BEARING_MIN_BYTES
        assert not flow.is_payload_bearing

    def test_payload_bearing_requires_all_three(self):
        good = make(packets=5, octets=1000, flags=TCPFlags.ACK | TCPFlags.PSH)
        assert good.is_payload_bearing
        assert not make(protocol=Protocol.UDP, flags=TCPFlags.ACK).is_payload_bearing
        assert not make(octets=400, packets=10, flags=TCPFlags.ACK).is_payload_bearing
        assert not make(octets=1000, packets=5, flags=TCPFlags.SYN).is_payload_bearing

    def test_threshold_boundary(self):
        at = make(packets=1, octets=40 + 36, flags=TCPFlags.ACK)
        below = make(packets=1, octets=40 + 35, flags=TCPFlags.ACK)
        assert at.is_payload_bearing
        assert not below.is_payload_bearing


class TestFlags:
    def test_has_ack(self):
        assert TCPFlags.has_ack(TCPFlags.ACK | TCPFlags.SYN)
        assert not TCPFlags.has_ack(TCPFlags.SYN | TCPFlags.FIN)

    def test_describe(self):
        assert TCPFlags.describe(TCPFlags.SYN | TCPFlags.ACK) == "SYN|ACK"
        assert TCPFlags.describe(0) == "-"

    def test_flag_bits_are_netflow_v5(self):
        assert TCPFlags.FIN == 0x01
        assert TCPFlags.SYN == 0x02
        assert TCPFlags.RST == 0x04
        assert TCPFlags.PSH == 0x08
        assert TCPFlags.ACK == 0x10
        assert TCPFlags.URG == 0x20
