"""Unit tests for traffic statistics (repro.flows.stats)."""

import numpy as np
import pytest

from repro.flows.log import FlowBatch, FlowLog
from repro.flows.record import Protocol, TCPFlags
from repro.flows.stats import (
    hourly_volume,
    port_histogram,
    profile_flows,
    top_talkers,
)

ACKED = TCPFlags.SYN | TCPFlags.ACK | TCPFlags.PSH


def sample_log():
    batch = FlowBatch()
    batch.add(100, 1, 40000, 80, Protocol.TCP, 10, 2000, ACKED, 100.0)
    batch.add(100, 2, 40001, 80, Protocol.TCP, 4, 400, ACKED, 200.0)
    batch.add(100, 3, 40002, 25, Protocol.TCP, 3, 156, TCPFlags.SYN, 3700.0)
    batch.add(200, 1, 40003, 25, Protocol.TCP, 8, 1500, ACKED, 3900.0)
    batch.add(300, 3, 40004, 53, Protocol.UDP, 2, 200, 0, 7300.0)
    return FlowLog.from_batches([batch])


class TestProfile:
    def test_counts(self):
        profile = profile_flows(sample_log())
        assert profile.flows == 5
        assert profile.packets == 27
        assert profile.octets == 4256
        assert profile.unique_sources == 3
        assert profile.unique_destinations == 3

    def test_protocol_breakdown(self):
        profile = profile_flows(sample_log())
        assert profile.by_protocol == {"tcp": 4, "udp": 1}

    def test_payload_bearing(self):
        profile = profile_flows(sample_log())
        assert profile.payload_bearing_flows == 3
        assert profile.payload_bearing_sources == 2
        assert profile.payload_bearing_fraction == pytest.approx(0.6)

    def test_empty_log(self):
        profile = profile_flows(FlowLog.empty())
        assert profile.flows == 0
        assert profile.payload_bearing_fraction == 0.0
        assert profile.mean_packets_per_flow == 0.0

    def test_rows(self):
        rows = profile_flows(sample_log()).rows()
        assert {row["metric"] for row in rows} >= {"flows", "octets"}


class TestTopTalkers:
    def test_by_flows(self):
        talkers = top_talkers(sample_log(), count=2)
        assert talkers[0]["source"] == "0.0.0.100"
        assert talkers[0]["flows"] == 3

    def test_by_octets(self):
        talkers = top_talkers(sample_log(), count=1, by="octets")
        assert talkers[0]["source"] == "0.0.0.100"
        assert talkers[0]["octets"] == 2556

    def test_invalid_ranking(self):
        with pytest.raises(ValueError):
            top_talkers(sample_log(), by="packets")

    def test_empty(self):
        assert top_talkers(FlowLog.empty()) == []


class TestPortHistogram:
    def test_ordering(self):
        histogram = port_histogram(sample_log(), count=2)
        assert histogram[0]["dst_port"] in (80, 25)
        assert histogram[0]["flows"] == 2

    def test_empty(self):
        assert port_histogram(FlowLog.empty()) == []


class TestHourlyVolume:
    def test_buckets(self):
        volume = hourly_volume(sample_log())
        assert volume == {0: 2, 1: 2, 2: 1}

    def test_empty(self):
        assert hourly_volume(FlowLog.empty()) == {}


class TestScenarioProfile:
    def test_october_capture_profile(self, small_scenario):
        profile = profile_flows(small_scenario.october_traffic.flows)
        assert profile.flows > 1000
        assert profile.by_protocol.get("tcp", 0) == profile.flows  # all TCP
        # Hostile SYN probing keeps the payload fraction well below 1.
        assert 0.05 < profile.payload_bearing_fraction < 0.95
