"""End-to-end integration tests: the paper's claims on the small scenario.

These are the reproduction's acceptance tests — every headline result of
the paper, checked qualitatively on the fast scenario.  The benchmark
suite re-runs them at full scale.
"""

import numpy as np
import pytest

from repro.ipspace import cidr as icidr
from repro.core.density import density_test
from repro.core.prediction import prediction_test
from repro.core.uncleanliness import UncleanlinessScorer, block_jaccard

SUBSETS = 80


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(2006)


class TestSpatialUncleanliness:
    """§4: compromised hosts cluster into fewer equal-sized blocks."""

    @pytest.mark.parametrize("tag", ["bot", "phish", "spam", "scan"])
    def test_unclean_reports_denser_than_control(self, small_scenario, rng, tag):
        result = density_test(
            small_scenario.report(tag), small_scenario.control, rng, subsets=SUBSETS
        )
        assert result.hypothesis_holds(), tag

    def test_density_advantage_substantial_at_slash20(self, small_scenario, rng):
        result = density_test(
            small_scenario.bot, small_scenario.control, rng, subsets=SUBSETS
        )
        assert result.density_ratio(20) > 1.5


class TestTemporalUncleanliness:
    """§5: a five-month-old bot report predicts future unclean activity."""

    @pytest.mark.parametrize("tag", ["bot", "spam", "scan"])
    def test_bot_test_predicts_botnet_linked_activity(self, small_scenario, rng, tag):
        result = prediction_test(
            small_scenario.bot_test,
            small_scenario.report(tag),
            small_scenario.control,
            rng,
            subsets=SUBSETS,
        )
        assert result.hypothesis_holds(), tag
        # The predictive band covers the paper's operative region (>=20 bits).
        winners = result.predictive_prefixes()
        assert any(20 <= n <= 24 for n in winners), tag

    def test_bot_test_does_not_predict_phishing(self, small_scenario, rng):
        result = prediction_test(
            small_scenario.bot_test,
            small_scenario.phish_present,
            small_scenario.control,
            rng,
            subsets=SUBSETS,
        )
        assert len(result.predictive_prefixes()) <= 1

    def test_phishing_predicts_phishing(self, small_scenario, rng):
        result = prediction_test(
            small_scenario.phish_test,
            small_scenario.phish_present,
            small_scenario.control,
            rng,
            subsets=SUBSETS,
        )
        assert result.hypothesis_holds()


class TestCrossRelationships:
    """§5.2: bots/scan/spam co-move; phishing is its own dimension."""

    def test_bot_scan_spam_share_more_blocks_than_phish(self, small_scenario):
        bot = small_scenario.bot
        related = min(
            block_jaccard(bot, small_scenario.scan, 24),
            block_jaccard(bot, small_scenario.spam, 24),
        )
        unrelated = block_jaccard(bot, small_scenario.phish, 24)
        assert related > 2 * unrelated


class TestBlocking:
    """§6: blocking C_n(bot-test) is feasible."""

    def test_partition_shape(self, small_scenario):
        part = small_scenario.partition
        assert len(part.unknown) > len(part.hostile) > len(part.innocent)

    def test_tp_rate_high_at_slash24(self, small_scenario):
        row = small_scenario.blocking().row(24)
        assert row.tp_rate > 0.8
        assert row.tp_rate_assuming_unknown_hostile > row.tp_rate

    def test_counts_monotone(self, small_scenario):
        assert small_scenario.blocking().monotone_decreasing()

    def test_slow_scanners_land_in_unknown(self, small_scenario):
        """§6.2: hand-examination found slow scanners in R_unknown."""
        traffic = small_scenario.october_traffic
        quiet = np.union1d(
            traffic.ground_truth("slow_scanners"),
            np.union1d(
                traffic.ground_truth("ephemeral"),
                traffic.ground_truth("suspicious"),
            ),
        )
        unknown = small_scenario.partition.unknown.addresses
        assert unknown.size > 0
        assert np.isin(unknown, quiet).all()

    def test_sparse_traffic_from_blocked_space(self, small_scenario):
        """§6.2: only a few % of blocked /24 space ever communicated."""
        blocked = icidr.block_count(small_scenario.bot_test, 24)
        candidates = len(small_scenario.partition.candidate)
        assert candidates < 0.15 * blocked * 256


class TestMultidimensionalMetric:
    """§7: the forward-looking uncleanliness score."""

    def test_unclean_blocks_outscore_control_blocks(self, small_scenario, rng):
        scorer = UncleanlinessScorer(prefix_len=24)
        scores = scorer.score(
            {
                "bots": small_scenario.bot,
                "scanning": small_scenario.scan,
                "spam": small_scenario.spam,
                "phishing": small_scenario.phish,
            }
        )
        bot_scores = [scores.score_of(int(a)) for a in small_scenario.bot.addresses[:300]]
        control_scores = [
            scores.score_of(int(a)) for a in small_scenario.control.addresses[:300]
        ]
        assert np.mean(bot_scores) > 5 * max(np.mean(control_scores), 1e-6)

    def test_blocklist_catches_future_bots(self, small_scenario):
        # Score on the October evidence; the top blocks should contain a
        # disproportionate share of the *unreported* channels' bots too.
        scorer = UncleanlinessScorer(prefix_len=24)
        scores = scorer.score({"bots": small_scenario.bot})
        from repro.sim.timeline import PAPER_WINDOWS

        hidden = small_scenario.botnet.active_addresses(
            PAPER_WINDOWS.OCTOBER,
            channels=[small_scenario.config.bot_test_channel],
        )
        if hidden.size == 0:
            pytest.skip("no hidden-channel bots in this draw")
        hits = np.mean([scores.score_of(int(a)) > 0 for a in hidden])
        assert hits > 0.5
