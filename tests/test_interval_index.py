"""Edge-case tests for the streaming query layer's interval index.

The geometry the index must survive: reserved/unobserved ranges miss,
/32 blocks are one-address intervals, addresses outside the observed
network resolve (not crash) at the extremes of the address space, and
an empty blocklist rejects everything.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ipspace.cidr import mask_array
from repro.ipspace.intervals import IntervalIndex

addresses = st.integers(min_value=0, max_value=0xFFFFFFFF)


class TestConstruction:
    def test_rejects_overlap(self):
        with pytest.raises(ValueError, match="overlap"):
            IntervalIndex(
                starts=np.asarray([0, 50], dtype=np.uint32),
                ends=np.asarray([60, 100], dtype=np.uint32),
            )

    def test_rejects_unsorted_starts(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            IntervalIndex(
                starts=np.asarray([50, 0], dtype=np.uint32),
                ends=np.asarray([60, 10], dtype=np.uint32),
            )

    def test_rejects_inverted_interval(self):
        with pytest.raises(ValueError, match="ends before"):
            IntervalIndex(
                starts=np.asarray([10], dtype=np.uint32),
                ends=np.asarray([5], dtype=np.uint32),
            )

    def test_rejects_value_shape_mismatch(self):
        with pytest.raises(ValueError, match="values shape"):
            IntervalIndex(
                starts=np.asarray([0], dtype=np.uint32),
                ends=np.asarray([9], dtype=np.uint32),
                values=np.asarray([1.0, 2.0]),
            )

    def test_arrays_frozen(self):
        index = IntervalIndex.from_blocks(
            np.asarray([256], dtype=np.uint32), 24
        )
        with pytest.raises(ValueError):
            index.starts[0] = 0


class TestEmptyBlocklist:
    """An empty blocklist is an index of zero intervals: nothing matches."""

    def test_everything_misses(self):
        index = IntervalIndex.empty()
        assert len(index) == 0
        assert index.covered_addresses() == 0
        assert not index.contains(0)
        assert not index.contains("255.255.255.255")
        assert not index.lookup(
            np.asarray([0, 1, 2**32 - 1], dtype=np.uint32)
        ).any()

    def test_values_at_empty_valued_index(self):
        index = IntervalIndex.from_blocks(
            np.asarray([], dtype=np.uint32), 24, values=np.asarray([])
        )
        out = index.values_at(np.asarray([17], dtype=np.uint32), default=-1.0)
        assert out.tolist() == [-1.0]


class TestSlash32Blocks:
    """/32 blocks degenerate to single-address intervals."""

    def test_exact_address_only(self):
        net = int(np.uint32(0x0A000005))  # 10.0.0.5/32
        index = IntervalIndex.from_blocks(
            np.asarray([net], dtype=np.uint32), 32, values=np.asarray([0.75])
        )
        assert index.covered_addresses() == 1
        assert index.contains(net)
        assert not index.contains(net - 1)
        assert not index.contains(net + 1)
        assert index.value_of(net) == 0.75
        assert index.value_of(net + 1, default=0.0) == 0.0

    def test_adjacent_slash32s_stay_distinct(self):
        nets = np.asarray([100, 101, 102], dtype=np.uint32)
        index = IntervalIndex.from_blocks(
            nets, 32, values=np.asarray([0.1, 0.2, 0.3])
        )
        assert index.values_at(nets).tolist() == [0.1, 0.2, 0.3]


class TestOutsideObservedNetwork:
    """Addresses outside every indexed block, including space extremes."""

    def test_reserved_and_unobserved_ranges_miss(self):
        # Index covers 10.1.2.0/24 only; probe reserved/unobserved space.
        net = (10 << 24) | (1 << 16) | (2 << 8)
        index = IntervalIndex.from_blocks(
            np.asarray([net], dtype=np.uint32), 24, values=np.asarray([0.9])
        )
        probes = ["0.0.0.0", "9.255.255.255", "10.1.3.0",
                  "127.0.0.1", "224.0.0.1", "255.255.255.255"]
        for probe in probes:
            assert not index.contains(probe), probe
            assert index.value_of(probe, default=0.0) == 0.0
        assert index.contains("10.1.2.0")
        assert index.contains("10.1.2.255")
        assert index.value_of("10.1.2.77") == 0.9

    def test_below_first_interval_is_a_miss(self):
        # searchsorted slot -1: address below every start must not wrap.
        index = IntervalIndex.from_blocks(
            np.asarray([1 << 24], dtype=np.uint32), 24
        )
        assert not index.contains(0)
        mask = index.lookup(np.asarray([0, (1 << 24) - 1], dtype=np.uint32))
        assert not mask.any()

    def test_whole_space_block(self):
        index = IntervalIndex.from_blocks(np.asarray([0], dtype=np.uint32), 0)
        assert index.contains(0)
        assert index.contains(2**32 - 1)
        assert index.covered_addresses() == 2**32


class TestAgainstMaskReference:
    @given(
        st.lists(addresses, max_size=30),
        st.lists(addresses, max_size=30),
        st.sampled_from([8, 16, 24, 30, 32]),
    )
    @settings(max_examples=80, deadline=None)
    def test_lookup_matches_mask_membership(self, members, probes, prefix_len):
        """Index membership == 'probe's masked network is an indexed block'."""
        nets = np.unique(
            mask_array(np.asarray(members, dtype=np.uint32), prefix_len)
        )
        index = IntervalIndex.from_blocks(nets, prefix_len)
        probe_array = np.asarray(probes, dtype=np.uint32)
        expected = np.isin(mask_array(probe_array, prefix_len), nets)
        assert np.array_equal(index.lookup(probe_array), expected)

    @given(st.lists(addresses, min_size=1, max_size=20), st.data())
    @settings(max_examples=60, deadline=None)
    def test_values_roundtrip(self, members, data):
        nets = np.unique(mask_array(np.asarray(members, dtype=np.uint32), 24))
        values = np.linspace(0.0, 1.0, nets.size)
        index = IntervalIndex.from_blocks(nets, 24, values=values)
        pick = data.draw(st.integers(0, nets.size - 1))
        inside = int(nets[pick]) + data.draw(st.integers(0, 255))
        assert index.value_of(inside) == values[pick]

    def test_values_at_requires_values(self):
        index = IntervalIndex.from_blocks(np.asarray([0], dtype=np.uint32), 24)
        with pytest.raises(ValueError, match="without values"):
            index.values_at(np.asarray([1], dtype=np.uint32))
