"""Unit tests for report and flow serialisation."""

import datetime
import io

import numpy as np
import pytest

from repro.core.report import DataClass, Report, ReportType
from repro.flows.log import FlowBatch, FlowLog
from repro.flows.record import Protocol, TCPFlags
from repro.io import (
    read_address_list,
    read_flows,
    read_report,
    write_flows,
    write_report,
)


def sample_report():
    return Report.from_addresses(
        "bot",
        ["62.4.1.1", "200.3.2.1", "8.8.8.8"],
        report_type=ReportType.PROVIDED,
        data_class=DataClass.BOTS,
        period=(datetime.date(2006, 10, 1), datetime.date(2006, 10, 14)),
    )


class TestReportIO:
    def test_round_trip_stream(self):
        report = sample_report()
        buffer = io.StringIO()
        write_report(report, buffer)
        buffer.seek(0)
        loaded = read_report(buffer)
        assert loaded == report

    def test_round_trip_file(self, tmp_path):
        report = sample_report()
        path = tmp_path / "bot.txt"
        write_report(report, path)
        assert read_report(path) == report

    def test_round_trip_without_period(self, tmp_path):
        report = Report.from_addresses("x", ["1.0.0.1"])
        path = tmp_path / "x.txt"
        write_report(report, path)
        loaded = read_report(path)
        assert loaded.period is None
        assert np.array_equal(loaded.addresses, report.addresses)

    def test_bare_address_list(self):
        buffer = io.StringIO("# feed dump\n1.0.0.1\n\n2.0.0.2\n")
        report = read_report(buffer)
        assert report.tag == "imported"
        assert len(report) == 2

    def test_read_address_list(self):
        report = read_address_list(["# comment", "9.9.9.9", "", "8.8.8.8"], tag="feed")
        assert report.tag == "feed"
        assert len(report) == 2

    def test_malformed_address_raises(self):
        with pytest.raises(ValueError):
            read_address_list(["1.2.3.999"])


def sample_flows():
    batch = FlowBatch()
    batch.add(100, 1, 40000, 80, Protocol.TCP, 10, 2000,
              TCPFlags.SYN | TCPFlags.ACK, 10.5, 12.25)
    batch.add(200, 2, 40001, 25, Protocol.UDP, 2, 200, 0, 30.0)
    return FlowLog.from_batches([batch])


class TestFlowIO:
    def test_round_trip_stream(self):
        flows = sample_flows()
        buffer = io.StringIO()
        write_flows(flows, buffer)
        buffer.seek(0)
        loaded = read_flows(buffer)
        assert len(loaded) == len(flows)
        for name in ("src_addr", "dst_addr", "octets", "tcp_flags"):
            assert np.array_equal(loaded.column(name), flows.column(name)), name
        assert np.allclose(loaded.start_time, flows.start_time)

    def test_round_trip_file(self, tmp_path):
        path = tmp_path / "flows.csv"
        write_flows(sample_flows(), path)
        assert len(read_flows(path)) == 2

    def test_empty_log_round_trip(self):
        buffer = io.StringIO()
        write_flows(FlowLog.empty(), buffer)
        buffer.seek(0)
        assert len(read_flows(buffer)) == 0

    def test_bad_header_rejected(self):
        with pytest.raises(ValueError):
            read_flows(io.StringIO("nope,nope\n"))

    def test_malformed_row_rejected(self):
        buffer = io.StringIO()
        write_flows(sample_flows(), buffer)
        content = buffer.getvalue() + "1.2.3.4,oops\n"
        with pytest.raises(ValueError):
            read_flows(io.StringIO(content))

    def test_payload_semantics_survive(self):
        flows = sample_flows()
        buffer = io.StringIO()
        write_flows(flows, buffer)
        buffer.seek(0)
        loaded = read_flows(buffer)
        assert np.array_equal(
            loaded.payload_bearing_mask(), flows.payload_bearing_mask()
        )
