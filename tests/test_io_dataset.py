"""Unit tests for dataset directories (repro.io.dataset)."""

import json

import numpy as np
import pytest

from repro.core.report import DataClass, Report, ReportType
from repro.flows.log import FlowBatch, FlowLog
from repro.flows.record import Protocol, TCPFlags
from repro.io.dataset import Dataset, load_dataset, save_dataset, save_scenario


def make_dataset():
    batch = FlowBatch()
    batch.add(100, 1, 40000, 80, Protocol.TCP, 10, 2000,
              TCPFlags.SYN | TCPFlags.ACK, 10.0)
    return Dataset(
        reports={
            "bot": Report.from_addresses(
                "bot", ["62.4.1.1", "62.4.1.2"],
                report_type=ReportType.PROVIDED, data_class=DataClass.BOTS,
            ),
            "control": Report.from_addresses("control", ["8.8.8.8"]),
        },
        flows={"october": FlowLog.from_batches([batch])},
        metadata={"seed": 7},
    )


class TestRoundTrip:
    def test_reports_round_trip(self, tmp_path):
        save_dataset(make_dataset(), tmp_path / "ds")
        loaded = load_dataset(tmp_path / "ds")
        assert set(loaded.reports) == {"bot", "control"}
        assert loaded.reports["bot"] == make_dataset().reports["bot"]

    def test_flows_round_trip(self, tmp_path):
        save_dataset(make_dataset(), tmp_path / "ds")
        loaded = load_dataset(tmp_path / "ds")
        assert len(loaded.flows["october"]) == 1
        assert loaded.flows["october"].record(0).src_addr == 100

    def test_metadata_round_trip(self, tmp_path):
        save_dataset(make_dataset(), tmp_path / "ds")
        assert load_dataset(tmp_path / "ds").metadata == {"seed": 7}

    def test_manifest_contents(self, tmp_path):
        root = save_dataset(make_dataset(), tmp_path / "ds")
        manifest = json.loads((root / "manifest.json").read_text())
        assert manifest["format_version"] == 1
        assert manifest["reports"]["bot"]["size"] == 2
        assert manifest["flows"]["october"]["records"] == 1

    def test_report_lookup(self, tmp_path):
        save_dataset(make_dataset(), tmp_path / "ds")
        loaded = load_dataset(tmp_path / "ds")
        assert len(loaded.report("bot")) == 2
        with pytest.raises(KeyError):
            loaded.report("nope")


class TestValidation:
    def test_missing_manifest(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_dataset(tmp_path)

    def test_bad_version(self, tmp_path):
        root = save_dataset(make_dataset(), tmp_path / "ds")
        manifest = json.loads((root / "manifest.json").read_text())
        manifest["format_version"] = 99
        (root / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ValueError):
            load_dataset(root)

    def test_size_mismatch_detected(self, tmp_path):
        root = save_dataset(make_dataset(), tmp_path / "ds")
        manifest = json.loads((root / "manifest.json").read_text())
        manifest["reports"]["bot"]["size"] = 99
        (root / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ValueError):
            load_dataset(root)

    def test_unsafe_tag_names_sanitised(self, tmp_path):
        dataset = Dataset(
            reports={"a/b c": Report.from_addresses("a/b c", ["1.0.0.1"])}
        )
        root = save_dataset(dataset, tmp_path / "ds")
        loaded = load_dataset(root)
        assert "a/b c" in loaded.reports


class TestScenarioSnapshot:
    def test_save_scenario(self, small_scenario, tmp_path):
        root = save_scenario(small_scenario, tmp_path / "snap")
        loaded = load_dataset(root)
        assert set(loaded.reports) == set(small_scenario.reports)
        for tag in small_scenario.reports:
            assert np.array_equal(
                loaded.reports[tag].addresses,
                small_scenario.reports[tag].addresses,
            ), tag
        assert len(loaded.flows["october"]) == len(
            small_scenario.october_traffic.flows
        )
        assert loaded.metadata["seed"] == small_scenario.config.seed

    def test_save_scenario_without_flows(self, small_scenario, tmp_path):
        root = save_scenario(
            small_scenario, tmp_path / "snap2", include_flows=False
        )
        assert load_dataset(root).flows == {}
