"""Unit tests for repro.ipspace.addr."""

import ipaddress

import numpy as np
import pytest

from repro.ipspace.addr import (
    MAX_ADDRESS,
    as_array,
    as_int,
    as_str,
    block_size,
    first_octet,
    format_array,
    prefix_mask,
)


class TestAsInt:
    def test_dotted_quad(self):
        assert as_int("127.1.135.14") == 2130806542

    def test_zero(self):
        assert as_int("0.0.0.0") == 0

    def test_max(self):
        assert as_int("255.255.255.255") == MAX_ADDRESS

    def test_int_passthrough(self):
        assert as_int(42) == 42

    def test_numpy_integer(self):
        assert as_int(np.uint32(7)) == 7

    def test_ipaddress_object(self):
        assert as_int(ipaddress.IPv4Address("10.0.0.1")) == (10 << 24) + 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            as_int(-1)

    def test_too_large_rejected(self):
        with pytest.raises(ValueError):
            as_int(MAX_ADDRESS + 1)

    def test_bool_rejected(self):
        with pytest.raises(TypeError):
            as_int(True)

    def test_garbage_string_rejected(self):
        with pytest.raises(ValueError):
            as_int("not.an.ip.addr")

    def test_wrong_type_rejected(self):
        with pytest.raises(TypeError):
            as_int(3.14)


class TestAsStr:
    def test_round_trip(self):
        assert as_str(as_int("62.4.1.200")) == "62.4.1.200"

    def test_from_string(self):
        assert as_str("8.8.8.8") == "8.8.8.8"


class TestAsArray:
    def test_from_strings(self):
        arr = as_array(["1.0.0.1", "2.0.0.2"])
        assert arr.dtype == np.uint32
        assert list(arr) == [as_int("1.0.0.1"), as_int("2.0.0.2")]

    def test_numpy_passthrough_is_cheap(self):
        src = np.asarray([1, 2, 3], dtype=np.uint32)
        out = as_array(src)
        assert out.dtype == np.uint32
        assert np.array_equal(out, src)

    def test_numpy_negative_rejected(self):
        with pytest.raises(ValueError):
            as_array(np.asarray([-1], dtype=np.int64))

    def test_numpy_overflow_rejected(self):
        with pytest.raises(ValueError):
            as_array(np.asarray([MAX_ADDRESS + 1], dtype=np.int64))

    def test_empty(self):
        assert as_array([]).size == 0

    def test_format_array_round_trip(self):
        addrs = ["9.9.9.9", "10.20.30.40"]
        assert format_array(as_array(addrs)) == addrs


class TestPrefixMask:
    def test_full(self):
        assert prefix_mask(32) == MAX_ADDRESS

    def test_zero(self):
        assert prefix_mask(0) == 0

    def test_slash24(self):
        assert prefix_mask(24) == 0xFFFFFF00

    def test_slash16(self):
        assert prefix_mask(16) == 0xFFFF0000

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            prefix_mask(33)
        with pytest.raises(ValueError):
            prefix_mask(-1)


class TestBlockSize:
    def test_sizes(self):
        assert block_size(32) == 1
        assert block_size(24) == 256
        assert block_size(16) == 65536
        assert block_size(0) == 1 << 32

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            block_size(40)


def test_first_octet():
    assert first_octet("62.4.0.1") == 62
    assert first_octet(0) == 0
    assert first_octet("255.0.0.0") == 255
