"""Unit tests for repro.ipspace.cidr."""

import numpy as np
import pytest

from repro.ipspace.addr import as_int
from repro.ipspace.cidr import (
    CIDRBlock,
    block_count,
    contains,
    mask_address,
    mask_array,
    unique_blocks,
)


class TestCIDRBlock:
    def test_canonicalises_network(self):
        block = CIDRBlock(as_int("127.1.135.14"), 16)
        assert str(block) == "127.1.0.0/16"

    def test_paper_example(self):
        # §3.1: C_16(127.1.135.14) = 127.1.0.0/16
        assert CIDRBlock.containing("127.1.135.14", 16) == CIDRBlock.parse("127.1.0.0/16")

    def test_parse(self):
        block = CIDRBlock.parse("10.0.0.0/8")
        assert block.prefix_len == 8
        assert block.first_address == 10 << 24

    def test_parse_rejects_plain_address(self):
        with pytest.raises(ValueError):
            CIDRBlock.parse("10.0.0.0")

    def test_bad_prefix(self):
        with pytest.raises(ValueError):
            CIDRBlock(0, 33)

    def test_first_last(self):
        block = CIDRBlock.parse("192.0.2.0/24")
        assert block.last_address - block.first_address == 255
        assert block.num_addresses == 256

    def test_contains(self):
        block = CIDRBlock.parse("62.4.0.0/16")
        assert block.contains("62.4.200.1")
        assert not block.contains("62.5.0.1")

    def test_slash32_contains_only_itself(self):
        block = CIDRBlock.containing("1.2.3.4", 32)
        assert block.contains("1.2.3.4")
        assert not block.contains("1.2.3.5")

    def test_subblock_of(self):
        outer = CIDRBlock.parse("62.4.0.0/16")
        inner = CIDRBlock.parse("62.4.9.0/24")
        assert inner.subblock_of(outer)
        assert not outer.subblock_of(inner)
        assert outer.subblock_of(outer)

    def test_subblock_of_disjoint(self):
        a = CIDRBlock.parse("62.4.0.0/24")
        b = CIDRBlock.parse("62.5.0.0/24")
        assert not a.subblock_of(b)

    def test_addresses_iterates_block(self):
        block = CIDRBlock.parse("1.2.3.0/30")
        assert list(block.addresses()) == [
            as_int("1.2.3.0"),
            as_int("1.2.3.1"),
            as_int("1.2.3.2"),
            as_int("1.2.3.3"),
        ]

    def test_ordering_and_hash(self):
        a = CIDRBlock.parse("1.0.0.0/8")
        b = CIDRBlock.parse("2.0.0.0/8")
        assert a < b
        assert len({a, b, CIDRBlock.parse("1.0.0.0/8")}) == 2

    def test_repr(self):
        assert repr(CIDRBlock.parse("10.0.0.0/8")) == "CIDRBlock('10.0.0.0/8')"


class TestMasking:
    def test_mask_address(self):
        assert mask_address("127.1.135.14", 16) == as_int("127.1.0.0")

    def test_mask_address_zero_prefix(self):
        assert mask_address("200.1.2.3", 0) == 0

    def test_mask_array_matches_scalar(self, rng):
        addrs = rng.integers(0, 2**32, size=500, dtype=np.uint32)
        for n in (0, 8, 16, 24, 31, 32):
            masked = mask_array(addrs, n)
            scalars = [mask_address(int(a), n) for a in addrs]
            assert list(masked) == scalars

    def test_unique_blocks_sorted_and_deduped(self):
        addrs = ["10.0.0.1", "10.0.0.200", "10.0.1.3", "9.0.0.1"]
        blocks = unique_blocks(addrs, 24)
        assert list(blocks) == sorted(set(mask_address(a, 24) for a in addrs))

    def test_block_count_eq1(self):
        # Eq. 1: C_n(S) is the union of per-address blocks.
        addrs = ["10.0.0.1", "10.0.0.2", "10.0.0.3"]
        assert block_count(addrs, 24) == 1
        assert block_count(addrs, 32) == 3


class TestContains:
    def test_inclusion_relation(self):
        # Eq. 2: i ⊏ S iff C_n(i) ∈ C_n(S).
        block_set = unique_blocks(["10.0.0.1", "20.0.0.1"], 24)
        probe = np.asarray(
            [as_int("10.0.0.99"), as_int("20.0.1.1"), as_int("30.0.0.1")],
            dtype=np.uint32,
        )
        mask = contains(probe, block_set, 24)
        assert list(mask) == [True, False, False]

    def test_empty_block_set(self):
        probe = np.asarray([1, 2, 3], dtype=np.uint32)
        assert not contains(probe, np.asarray([], dtype=np.uint32), 24).any()

    def test_empty_probe(self):
        block_set = unique_blocks(["10.0.0.1"], 24)
        assert contains(np.asarray([], dtype=np.uint32), block_set, 24).size == 0

    def test_boundary_first_and_last_of_block(self):
        block_set = unique_blocks(["10.0.5.128"], 24)
        probe = np.asarray(
            [as_int("10.0.5.0"), as_int("10.0.5.255"), as_int("10.0.6.0"),
             as_int("10.0.4.255")],
            dtype=np.uint32,
        )
        assert list(contains(probe, block_set, 24)) == [True, True, False, False]

    def test_full_prefix(self):
        block_set = unique_blocks(["1.2.3.4"], 32)
        probe = np.asarray([as_int("1.2.3.4"), as_int("1.2.3.5")], dtype=np.uint32)
        assert list(contains(probe, block_set, 32)) == [True, False]
