"""Unit tests for network-aware clustering (repro.ipspace.clusters)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ipspace.addr import as_int
from repro.ipspace.cidr import CIDRBlock
from repro.ipspace.clusters import (
    PrefixTable,
    as_clustering_summary,
    synthesize_table,
    within_group_icc,
)


@pytest.fixture
def table():
    return PrefixTable(
        [
            CIDRBlock.parse("62.4.0.0/16"),
            CIDRBlock.parse("62.4.9.0/24"),  # more specific inside the /16
            CIDRBlock.parse("80.0.0.0/8"),
        ]
    )


class TestLookup:
    def test_longest_match_wins(self, table):
        assert table.lookup("62.4.9.77") == CIDRBlock.parse("62.4.9.0/24")

    def test_covering_prefix_used_otherwise(self, table):
        assert table.lookup("62.4.10.1") == CIDRBlock.parse("62.4.0.0/16")

    def test_short_prefix(self, table):
        assert table.lookup("80.200.1.1") == CIDRBlock.parse("80.0.0.0/8")

    def test_unrouted_address(self, table):
        assert table.lookup("9.9.9.9") is None

    def test_lookup_array_matches_scalar(self, table, rng):
        addrs = np.concatenate(
            [
                rng.integers(0, 2**32, size=200, dtype=np.uint32),
                np.asarray(
                    [as_int("62.4.9.1"), as_int("62.4.1.1"), as_int("80.1.1.1")],
                    dtype=np.uint32,
                ),
            ]
        )
        indices = table.lookup_array(addrs)
        for address, index in zip(addrs, indices):
            expected = table.lookup(int(address))
            if index == -1:
                assert expected is None
            else:
                assert table.prefixes[index] == expected

    def test_empty_table_rejected(self):
        with pytest.raises(ValueError):
            PrefixTable([])

    def test_duplicates_collapsed(self):
        table = PrefixTable([CIDRBlock.parse("10.0.0.0/8")] * 3)
        assert len(table) == 1


class TestAggregates:
    def test_cluster_count(self, table):
        addrs = ["62.4.9.1", "62.4.9.2", "62.4.1.1", "80.0.0.1", "9.9.9.9"]
        # /24 cluster, /16 cluster, /8 cluster; unrouted excluded.
        assert table.cluster_count(addrs) == 3

    def test_cluster_count_empty(self, table):
        assert table.cluster_count([]) == 0

    def test_cluster_sizes_dispersion(self, table):
        sizes = table.cluster_sizes()
        assert sizes.max() / sizes.min() == (1 << 24) / (1 << 8)

    def test_coverage_fraction(self, table):
        assert table.coverage_fraction(["62.4.0.1", "9.9.9.9"]) == 0.5
        assert table.coverage_fraction([]) == 0.0


class TestSynthesizedTable:
    def test_covers_all_live_hosts(self, tiny_internet, rng):
        table = synthesize_table(tiny_internet, rng)
        sample = tiny_internet.sample_hosts(500, rng)
        assert table.coverage_fraction(sample) == 1.0

    def test_heterogeneous_lengths(self, tiny_internet):
        table = synthesize_table(
            tiny_internet, np.random.default_rng(3), deaggregation_probability=0.6
        )
        lengths = {b.prefix_len for b in table.prefixes}
        assert 16 in lengths
        assert len(lengths) >= 3  # genuinely heterogeneous

    def test_no_deaggregation_gives_pure_slash16(self, tiny_internet):
        table = synthesize_table(
            tiny_internet, np.random.default_rng(3), deaggregation_probability=0.0
        )
        assert {b.prefix_len for b in table.prefixes} == {16}

    def test_orders_of_magnitude_spread(self, tiny_internet):
        # The §4.1 complaint: cluster populations differ by large factors.
        table = synthesize_table(
            tiny_internet, np.random.default_rng(3), deaggregation_probability=0.6
        )
        sizes = table.cluster_sizes()
        assert sizes.max() / sizes.min() >= 100

    def test_invalid_probability(self, tiny_internet, rng):
        with pytest.raises(ValueError):
            synthesize_table(tiny_internet, rng, deaggregation_probability=1.5)

    def test_deterministic(self, tiny_internet):
        a = synthesize_table(tiny_internet, np.random.default_rng(9))
        b = synthesize_table(tiny_internet, np.random.default_rng(9))
        assert a.prefixes == b.prefixes


class TestWithinGroupICC:
    def test_perfect_clustering(self):
        groups = np.repeat(np.arange(8), 20)
        values = np.repeat(np.linspace(0.0, 1.0, 8), 20)
        assert within_group_icc(groups, values) == pytest.approx(1.0)

    def test_shuffled_values_near_zero(self):
        rng = np.random.default_rng(3)
        groups = np.repeat(np.arange(20), 30)
        values = rng.normal(size=600)
        assert abs(within_group_icc(groups, values)) < 0.1

    def test_single_group_degenerate(self):
        # A one-AS world has no between-group variance to speak of.
        assert within_group_icc(np.zeros(40), np.arange(40.0)) == 0.0

    def test_all_singletons_degenerate(self):
        # Every AS announcing one prefix: no within-group variance.
        assert within_group_icc(np.arange(40), np.arange(40.0)) == 0.0

    def test_constant_values(self):
        groups = np.repeat(np.arange(4), 10)
        assert within_group_icc(groups, np.ones(40)) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="align"):
            within_group_icc(np.arange(4), np.arange(5.0))

    def test_empty(self):
        with pytest.raises(ValueError, match="observation"):
            within_group_icc(np.asarray([]), np.asarray([]))

    def test_unbalanced_groups(self):
        # One-member groups mixed with large ones must not crash and
        # must still detect obvious structure.
        groups = np.concatenate([np.zeros(50), np.ones(50), [2]])
        values = np.concatenate(
            [np.full(50, 0.1), np.full(50, 0.9), [0.5]]
        ) + np.random.default_rng(0).normal(0, 0.01, 101)
        assert within_group_icc(groups, values) > 0.9

    @given(
        st.integers(min_value=2, max_value=8),
        st.integers(min_value=2, max_value=25),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=60, deadline=None)
    def test_bounded_and_label_invariant(self, n_groups, per_group, seed):
        rng = np.random.default_rng(seed)
        groups = np.repeat(np.arange(n_groups), per_group)
        values = rng.normal(
            loc=rng.normal(size=n_groups)[groups], scale=0.5
        )
        icc = within_group_icc(groups, values)
        # ICC(1) lives in (-1, 1]; relabelling groups must not move it.
        assert -1.0 <= icc <= 1.0
        relabeled = (groups * 7 + 3) % (7 * n_groups)
        assert within_group_icc(relabeled, values) == pytest.approx(icc)


class TestASClusteringSummary:
    def test_as_world_clusters_within_as_flat_world_does_not(self):
        from repro.sim.asys import ASConfig
        from repro.sim.internet import InternetConfig, SyntheticInternet

        flat = SyntheticInternet(
            InternetConfig(num_slash16=200), np.random.default_rng(7)
        )
        structured = SyntheticInternet(
            InternetConfig(num_slash16=200, asys=ASConfig(num_as=20)),
            np.random.default_rng(7),
        )
        flat_stats = as_clustering_summary(flat)
        as_stats = as_clustering_summary(structured)
        # The headline claim: only the AS substrate makes distinct /16s
        # of one operator resemble each other.
        assert flat_stats["flat"] == 1.0 and as_stats["flat"] == 0.0
        assert flat_stats["icc_as16"] == 0.0  # all-singleton grouping
        assert as_stats["icc_as16"] > 0.15
        # The paper's /16-level spatial correlation survives in both.
        assert flat_stats["icc_net16"] > 0.3
        assert as_stats["icc_net16"] > 0.3
        # In the flat world, "AS" degenerates to "/16".
        assert flat_stats["icc_as"] == pytest.approx(
            flat_stats["icc_net16"]
        )
        assert flat_stats["num_as"] == flat_stats["num_net16"]
        assert as_stats["num_as"] == 20.0

    def test_single_as_world(self):
        from repro.sim.asys import ASConfig
        from repro.sim.internet import InternetConfig, SyntheticInternet

        world = SyntheticInternet(
            InternetConfig(num_slash16=40, asys=ASConfig(num_as=1)),
            np.random.default_rng(5),
        )
        stats = as_clustering_summary(world)
        assert stats["num_as"] == 1.0
        assert stats["icc_as"] == 0.0
        assert stats["icc_as16"] == 0.0

    def test_flat_summary_on_fixture(self, tiny_internet):
        stats = as_clustering_summary(tiny_internet)
        assert stats["flat"] == 1.0
        assert stats["icc_as16"] == 0.0
