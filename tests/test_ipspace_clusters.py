"""Unit tests for network-aware clustering (repro.ipspace.clusters)."""

import numpy as np
import pytest

from repro.ipspace.addr import as_int
from repro.ipspace.cidr import CIDRBlock
from repro.ipspace.clusters import PrefixTable, synthesize_table


@pytest.fixture
def table():
    return PrefixTable(
        [
            CIDRBlock.parse("62.4.0.0/16"),
            CIDRBlock.parse("62.4.9.0/24"),  # more specific inside the /16
            CIDRBlock.parse("80.0.0.0/8"),
        ]
    )


class TestLookup:
    def test_longest_match_wins(self, table):
        assert table.lookup("62.4.9.77") == CIDRBlock.parse("62.4.9.0/24")

    def test_covering_prefix_used_otherwise(self, table):
        assert table.lookup("62.4.10.1") == CIDRBlock.parse("62.4.0.0/16")

    def test_short_prefix(self, table):
        assert table.lookup("80.200.1.1") == CIDRBlock.parse("80.0.0.0/8")

    def test_unrouted_address(self, table):
        assert table.lookup("9.9.9.9") is None

    def test_lookup_array_matches_scalar(self, table, rng):
        addrs = np.concatenate(
            [
                rng.integers(0, 2**32, size=200, dtype=np.uint32),
                np.asarray(
                    [as_int("62.4.9.1"), as_int("62.4.1.1"), as_int("80.1.1.1")],
                    dtype=np.uint32,
                ),
            ]
        )
        indices = table.lookup_array(addrs)
        for address, index in zip(addrs, indices):
            expected = table.lookup(int(address))
            if index == -1:
                assert expected is None
            else:
                assert table.prefixes[index] == expected

    def test_empty_table_rejected(self):
        with pytest.raises(ValueError):
            PrefixTable([])

    def test_duplicates_collapsed(self):
        table = PrefixTable([CIDRBlock.parse("10.0.0.0/8")] * 3)
        assert len(table) == 1


class TestAggregates:
    def test_cluster_count(self, table):
        addrs = ["62.4.9.1", "62.4.9.2", "62.4.1.1", "80.0.0.1", "9.9.9.9"]
        # /24 cluster, /16 cluster, /8 cluster; unrouted excluded.
        assert table.cluster_count(addrs) == 3

    def test_cluster_count_empty(self, table):
        assert table.cluster_count([]) == 0

    def test_cluster_sizes_dispersion(self, table):
        sizes = table.cluster_sizes()
        assert sizes.max() / sizes.min() == (1 << 24) / (1 << 8)

    def test_coverage_fraction(self, table):
        assert table.coverage_fraction(["62.4.0.1", "9.9.9.9"]) == 0.5
        assert table.coverage_fraction([]) == 0.0


class TestSynthesizedTable:
    def test_covers_all_live_hosts(self, tiny_internet, rng):
        table = synthesize_table(tiny_internet, rng)
        sample = tiny_internet.sample_hosts(500, rng)
        assert table.coverage_fraction(sample) == 1.0

    def test_heterogeneous_lengths(self, tiny_internet):
        table = synthesize_table(
            tiny_internet, np.random.default_rng(3), deaggregation_probability=0.6
        )
        lengths = {b.prefix_len for b in table.prefixes}
        assert 16 in lengths
        assert len(lengths) >= 3  # genuinely heterogeneous

    def test_no_deaggregation_gives_pure_slash16(self, tiny_internet):
        table = synthesize_table(
            tiny_internet, np.random.default_rng(3), deaggregation_probability=0.0
        )
        assert {b.prefix_len for b in table.prefixes} == {16}

    def test_orders_of_magnitude_spread(self, tiny_internet):
        # The §4.1 complaint: cluster populations differ by large factors.
        table = synthesize_table(
            tiny_internet, np.random.default_rng(3), deaggregation_probability=0.6
        )
        sizes = table.cluster_sizes()
        assert sizes.max() / sizes.min() >= 100

    def test_invalid_probability(self, tiny_internet, rng):
        with pytest.raises(ValueError):
            synthesize_table(tiny_internet, rng, deaggregation_probability=1.5)

    def test_deterministic(self, tiny_internet):
        a = synthesize_table(tiny_internet, np.random.default_rng(9))
        b = synthesize_table(tiny_internet, np.random.default_rng(9))
        assert a.prefixes == b.prefixes
