"""Unit tests for the IANA 2006 allocation table."""

import pytest

from repro.ipspace.iana import STATUS_BY_OCTET, Status, allocated_octets, is_allocated


def test_table_covers_all_octets():
    assert set(STATUS_BY_OCTET) == set(range(256))


def test_special_purpose_blocks():
    assert STATUS_BY_OCTET[0] == Status.RESERVED
    assert STATUS_BY_OCTET[10] == Status.PRIVATE
    assert STATUS_BY_OCTET[127] == Status.RESERVED


def test_class_d_and_e_reserved():
    for octet in range(224, 256):
        assert STATUS_BY_OCTET[octet] == Status.RESERVED


def test_legacy_class_a_allocated():
    for octet in (3, 9, 12, 18, 38):
        assert is_allocated(octet)


def test_class_b_space_allocated():
    # 128-172 were administered by the registries in 2006.
    for octet in (128, 150, 169, 172):
        assert is_allocated(octet)


def test_2006_unallocated_examples():
    # Allocated only after the study period (2007+).
    for octet in (1, 2, 5, 23, 31, 36, 37, 42, 46, 49, 50, 100, 173):
        assert not is_allocated(octet)


def test_allocated_octet_count_2006_scale():
    # By late 2006 the IANA free pool held ~50 of 256 /8s; with ~35
    # special-purpose /8s that leaves roughly 150-175 populated.
    count = len(allocated_octets())
    assert 140 <= count <= 175


def test_allocated_excludes_reserved():
    allocated = allocated_octets()
    assert 0 not in allocated
    assert 10 not in allocated
    assert 127 not in allocated
    assert not any(o >= 224 for o in allocated)


def test_is_allocated_range_check():
    with pytest.raises(ValueError):
        is_allocated(256)
    with pytest.raises(ValueError):
        is_allocated(-1)
