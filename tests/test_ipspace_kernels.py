"""Unit and property tests for the batched prefix kernels.

The kernels evaluate a whole ``(trials, cardinality)`` matrix at once;
every test checks them against the scalar per-trial reference
(:func:`repro.ipspace.cidr.block_count` / ``np.intersect1d`` /
:func:`repro.ipspace.cidr.contains`) — the contract is bit-identity,
not approximation.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ipspace import cidr as icidr
from repro.ipspace.kernels import (
    block_counts_2d,
    intersection_counts_2d,
    member_counts_2d,
    sorted_rows,
)

PREFIXES = (0, 8, 16, 20, 24, 28, 31, 32)

addresses = st.integers(min_value=0, max_value=0xFFFFFFFF)


def matrix_strategy(min_trials=0, max_trials=6, min_width=0, max_width=40):
    """Random sorted uint32 trial matrices (duplicates allowed)."""
    width = st.shared(
        st.integers(min_value=min_width, max_value=max_width), key="width"
    )
    row = width.flatmap(
        lambda w: st.lists(addresses, min_size=w, max_size=w)
    )
    return st.lists(
        row, min_size=min_trials, max_size=max_trials
    ).map(
        lambda rows: np.sort(
            np.asarray(rows, dtype=np.uint32).reshape(
                len(rows), len(rows[0]) if rows else 0
            ),
            axis=1,
        )
    )


def reference_block_counts(rows, prefixes):
    return np.array(
        [[icidr.block_count(row, n) for n in prefixes] for row in rows],
        dtype=np.int64,
    ).reshape(rows.shape[0], len(prefixes))


class TestSortedRows:
    def test_sorts_each_row(self):
        rows = np.array([[3, 1, 2], [9, 9, 0]], dtype=np.uint32)
        out = sorted_rows(rows)
        assert np.array_equal(out, np.sort(rows, axis=1))

    def test_promotes_vector_to_single_row(self):
        out = sorted_rows(np.array([5, 1, 3], dtype=np.uint32))
        assert np.array_equal(out, [[1, 3, 5]])

    def test_kernels_reject_non_2d(self):
        with pytest.raises(ValueError):
            block_counts_2d(np.zeros(4, dtype=np.uint32), (24,))
        with pytest.raises(ValueError):
            block_counts_2d(np.zeros((2, 2), dtype=np.int64), (24,))


class TestBlockCounts2D:
    def test_empty_matrix(self):
        out = block_counts_2d(np.empty((0, 0), dtype=np.uint32), PREFIXES)
        assert out.shape == (0, len(PREFIXES))

    def test_zero_width_rows(self):
        out = block_counts_2d(np.empty((3, 0), dtype=np.uint32), PREFIXES)
        assert np.array_equal(out, np.zeros((3, len(PREFIXES)), dtype=np.int64))

    def test_duplicates_collapse(self):
        rows = np.array([[1, 1, 1, 1]], dtype=np.uint32)
        out = block_counts_2d(rows, (24, 32))
        assert np.array_equal(out, [[1, 1]])

    def test_saturation_at_32(self):
        rows = np.sort(
            np.arange(40, dtype=np.uint32).reshape(2, 20), axis=1
        )
        out = block_counts_2d(rows, (32,))
        assert (out[:, 0] == 20).all()

    @given(matrix_strategy())
    @settings(max_examples=60, deadline=None)
    def test_matches_scalar_reference(self, rows):
        out = block_counts_2d(rows, PREFIXES)
        assert np.array_equal(out, reference_block_counts(rows, PREFIXES))


class TestIntersectionCounts2D:
    @given(matrix_strategy(), st.lists(addresses, max_size=50))
    @settings(max_examples=60, deadline=None)
    def test_matches_intersect1d_reference(self, rows, present):
        present = np.asarray(present, dtype=np.uint32)
        blocks = [icidr.unique_blocks(present, n) for n in PREFIXES]
        out = intersection_counts_2d(rows, blocks, PREFIXES)
        expected = np.array(
            [
                [
                    np.intersect1d(
                        icidr.unique_blocks(row, n), blocks[column]
                    ).size
                    for column, n in enumerate(PREFIXES)
                ]
                for row in rows
            ],
            dtype=np.int64,
        ).reshape(rows.shape[0], len(PREFIXES))
        assert np.array_equal(out, expected)

    def test_weighted_counts_multiplicities(self):
        # Target has 3 addresses in 10.0.0.0/24, 1 elsewhere.
        target = np.array(
            [0x0A000001, 0x0A000002, 0x0A000003, 0x14000001], dtype=np.uint32
        )
        blocks, weights = np.unique(
            icidr.mask_array(target, 24), return_counts=True
        )
        rows = np.sort(
            np.array([[0x0A0000FF, 0x30000000]], dtype=np.uint32), axis=1
        )
        out = intersection_counts_2d(
            rows, (blocks,), (24,), weights_by_prefix=(weights.astype(np.int64),)
        )
        assert out[0, 0] == 3  # covers all three 10.0.0.x addresses

    def test_empty_block_sets(self):
        rows = np.array([[1, 2, 3]], dtype=np.uint32)
        empty = np.empty(0, dtype=np.uint32)
        out = intersection_counts_2d(rows, (empty, empty), (24, 32))
        assert np.array_equal(out, [[0, 0]])

    def test_mismatched_lengths_rejected(self):
        rows = np.array([[1]], dtype=np.uint32)
        with pytest.raises(ValueError):
            intersection_counts_2d(rows, (np.empty(0, dtype=np.uint32),), (24, 32))


class TestMemberCounts2D:
    @given(matrix_strategy(), st.lists(addresses, max_size=50))
    @settings(max_examples=60, deadline=None)
    def test_matches_contains_reference(self, rows, covering):
        covering = np.asarray(covering, dtype=np.uint32)
        blocks = [icidr.unique_blocks(covering, n) for n in PREFIXES]
        out = member_counts_2d(rows, blocks, PREFIXES)
        expected = np.array(
            [
                [
                    int(icidr.contains(row, blocks[column], n).sum())
                    for column, n in enumerate(PREFIXES)
                ]
                for row in rows
            ],
            dtype=np.int64,
        ).reshape(rows.shape[0], len(PREFIXES))
        assert np.array_equal(out, expected)

    def test_counts_with_multiplicity(self):
        # Unlike the intersection kernel, members count duplicate
        # addresses individually (the §6 population semantics).
        rows = np.array([[0x0A000001, 0x0A000001, 0x0A000002]], dtype=np.uint32)
        blocks = icidr.unique_blocks(
            np.array([0x0A000009], dtype=np.uint32), 24
        )
        out = member_counts_2d(rows, (blocks,), (24,))
        assert out[0, 0] == 3
