"""Property tests for the sorted-merge incremental kernels.

Every merge kernel's contract is bit-identity with the rebuild-from-
scratch path it replaces: ``merge_sorted_rows`` against re-sorting the
concatenation, and the ``*_merge`` count updates against recounting the
merged matrix.  That identity is what makes the streaming layer's
incremental day folds indistinguishable from batch recomputation.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.trials import TrialEnsemble
from repro.ipspace.kernels import (
    block_counts_2d,
    block_counts_2d_merge,
    intersection_counts_2d,
    intersection_counts_2d_merge,
    merge_sorted,
    merge_sorted_rows,
    merge_unique,
    remove_sorted,
    sorted_rows,
)

PREFIXES = (0, 8, 16, 24, 28, 32)

addresses = st.integers(min_value=0, max_value=0xFFFFFFFF)


def sorted_array(values):
    return np.sort(np.asarray(values, dtype=np.uint32))


def unique_array(values):
    return np.unique(np.asarray(values, dtype=np.uint32))


def matrix_pair_strategy(max_trials=5, max_width=30, max_batch=12):
    """(rows, batch) with equal trial counts, both row-sorted."""
    trials = st.shared(
        st.integers(min_value=0, max_value=max_trials), key="trials"
    )

    def matrix(width_range):
        return trials.flatmap(
            lambda t: st.integers(*width_range).flatmap(
                lambda w: st.lists(
                    st.lists(addresses, min_size=w, max_size=w),
                    min_size=t,
                    max_size=t,
                ).map(
                    lambda rows: np.sort(
                        np.asarray(rows, dtype=np.uint32).reshape(t, w),
                        axis=1,
                    )
                )
            )
        )

    return st.tuples(matrix((0, max_width)), matrix((0, max_batch)))


class TestMergeSorted:
    @given(st.lists(addresses), st.lists(addresses))
    @settings(max_examples=100, deadline=None)
    def test_matches_concat_sort(self, left, right):
        a, b = sorted_array(left), sorted_array(right)
        merged = merge_sorted(a, b)
        assert np.array_equal(merged, np.sort(np.concatenate([a, b])))

    def test_stable_ties_keep_existing_first(self):
        merged = merge_sorted(
            np.asarray([5, 5], dtype=np.uint32), np.asarray([5], dtype=np.uint32)
        )
        assert np.array_equal(merged, [5, 5, 5])


class TestMergeUnique:
    @given(st.lists(addresses), st.lists(addresses))
    @settings(max_examples=100, deadline=None)
    def test_matches_union(self, left, right):
        a, b = unique_array(left), unique_array(right)
        merged, fresh = merge_unique(a, b)
        assert np.array_equal(merged, np.union1d(a, b))
        assert np.array_equal(b[fresh], np.setdiff1d(b, a))

    def test_no_fresh_returns_existing_unchanged(self):
        a = unique_array([1, 2, 3])
        merged, fresh = merge_unique(a, unique_array([2, 3]))
        assert merged is a
        assert not fresh.any()

    def test_empty_existing_copies_batch(self):
        b = unique_array([7, 9])
        merged, fresh = merge_unique(np.asarray([], dtype=np.uint32), b)
        assert np.array_equal(merged, b)
        assert merged is not b
        assert fresh.all()


class TestRemoveSorted:
    @given(st.lists(addresses), st.lists(addresses))
    @settings(max_examples=100, deadline=None)
    def test_matches_setdiff(self, values, victims):
        a = unique_array(values)
        # Only victims present in ``a`` are legal to remove.
        v = np.intersect1d(unique_array(victims), a)
        assert np.array_equal(remove_sorted(a, v), np.setdiff1d(a, v))

    def test_remove_everything(self):
        a = unique_array([1, 5, 9])
        assert remove_sorted(a, a).size == 0


class TestMergeSortedRows:
    @given(matrix_pair_strategy())
    @settings(max_examples=60, deadline=None)
    def test_matches_resort_of_concat(self, pair):
        rows, batch = pair
        merged = merge_sorted_rows(rows, batch)
        reference = sorted_rows(np.concatenate([rows, batch], axis=1))
        assert merged.dtype == np.uint32
        assert np.array_equal(merged, reference)

    def test_row_count_mismatch_rejected(self):
        with pytest.raises(ValueError, match="row-count mismatch"):
            merge_sorted_rows(
                np.zeros((2, 3), dtype=np.uint32),
                np.zeros((3, 1), dtype=np.uint32),
            )


class TestCountMergeKernels:
    @given(matrix_pair_strategy())
    @settings(max_examples=60, deadline=None)
    def test_block_counts_merge_matches_recount(self, pair):
        rows, batch = pair
        previous = block_counts_2d(rows, PREFIXES)
        updated = block_counts_2d_merge(previous, rows, batch, PREFIXES)
        merged = merge_sorted_rows(rows, batch)
        assert np.array_equal(updated, block_counts_2d(merged, PREFIXES))

    @given(matrix_pair_strategy(), st.lists(addresses, max_size=25))
    @settings(max_examples=60, deadline=None)
    def test_intersection_merge_matches_recount(self, pair, fixed):
        from repro.ipspace.cidr import mask_array

        rows, batch = pair
        fixed = unique_array(fixed)
        blocks_by_prefix = [
            np.unique(mask_array(fixed, n)) if fixed.size else fixed
            for n in PREFIXES
        ]
        previous = intersection_counts_2d(rows, blocks_by_prefix, PREFIXES)
        updated = intersection_counts_2d_merge(
            previous, rows, batch, blocks_by_prefix, PREFIXES
        )
        merged = merge_sorted_rows(rows, batch)
        assert np.array_equal(
            updated, intersection_counts_2d(merged, blocks_by_prefix, PREFIXES)
        )

    @given(matrix_pair_strategy(), st.lists(addresses, max_size=25))
    @settings(max_examples=40, deadline=None)
    def test_weighted_intersection_merge_matches_recount(self, pair, fixed):
        from repro.ipspace.cidr import mask_array

        rows, batch = pair
        fixed = unique_array(fixed)
        blocks_by_prefix = []
        weights_by_prefix = []
        for n in PREFIXES:
            if fixed.size:
                blocks, weights = np.unique(
                    mask_array(fixed, n), return_counts=True
                )
            else:
                blocks, weights = fixed, fixed.astype(np.int64)
            blocks_by_prefix.append(blocks)
            weights_by_prefix.append(weights.astype(np.int64))
        previous = intersection_counts_2d(
            rows, blocks_by_prefix, PREFIXES, weights_by_prefix
        )
        updated = intersection_counts_2d_merge(
            previous, rows, batch, blocks_by_prefix, PREFIXES, weights_by_prefix
        )
        merged = merge_sorted_rows(rows, batch)
        assert np.array_equal(
            updated,
            intersection_counts_2d(
                merged, blocks_by_prefix, PREFIXES, weights_by_prefix
            ),
        )


class TestEnsembleMerge:
    def test_merged_with_equals_redraw_concat(self):
        rng = np.random.default_rng(42)
        matrix = np.sort(
            rng.integers(0, 2**32, size=(7, 20), dtype=np.uint32), axis=1
        )
        ensemble = TrialEnsemble(matrix=matrix)
        extra = rng.integers(0, 2**32, size=(7, 4), dtype=np.uint32)
        grown = ensemble.merged_with(extra)
        reference = np.sort(np.concatenate([matrix, extra], axis=1), axis=1)
        assert np.array_equal(grown.matrix, reference)
        assert grown.start == ensemble.start
        assert grown.source_tag == ensemble.source_tag

    def test_merged_with_rejects_wrong_trial_count(self):
        ensemble = TrialEnsemble(matrix=np.zeros((3, 2), dtype=np.uint32))
        with pytest.raises(ValueError, match="3 trials"):
            ensemble.merged_with(np.zeros((2, 1), dtype=np.uint32))
