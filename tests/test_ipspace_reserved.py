"""Unit tests for reserved-space filtering (§3.2 sanitisation)."""

import numpy as np

from repro.ipspace.addr import as_array, as_int
from repro.ipspace.reserved import (
    RESERVED_BLOCKS,
    filter_reserved,
    is_reserved,
    reserved_mask,
)


RESERVED_EXAMPLES = [
    "0.1.2.3",
    "10.200.1.1",  # RFC 1918
    "127.0.0.1",  # loopback
    "169.254.9.9",  # link-local
    "172.16.0.1",  # RFC 1918
    "172.31.255.255",  # RFC 1918 upper edge
    "192.0.2.55",  # TEST-NET
    "192.168.1.1",  # RFC 1918
    "198.18.0.1",  # benchmarking
    "224.0.0.1",  # multicast
    "255.255.255.255",  # class E / broadcast
]

PUBLIC_EXAMPLES = [
    "8.8.8.8",
    "62.4.1.1",
    "172.15.255.255",  # just below RFC 1918 172.16/12
    "172.32.0.0",  # just above it
    "192.0.3.0",  # just past TEST-NET
    "198.20.0.0",  # just past benchmarking /15
    "223.255.255.255",  # last class C address
]


def test_reserved_examples_flagged():
    for address in RESERVED_EXAMPLES:
        assert is_reserved(address), address


def test_public_examples_pass():
    for address in PUBLIC_EXAMPLES:
        assert not is_reserved(address), address


def test_mask_matches_scalar():
    addrs = RESERVED_EXAMPLES + PUBLIC_EXAMPLES
    mask = reserved_mask(as_array(addrs))
    expected = [is_reserved(a) for a in addrs]
    assert list(mask) == expected


def test_filter_reserved_removes_only_reserved():
    addrs = as_array(RESERVED_EXAMPLES + PUBLIC_EXAMPLES)
    kept = filter_reserved(addrs)
    assert sorted(kept) == sorted(as_int(a) for a in PUBLIC_EXAMPLES)


def test_filter_empty():
    assert filter_reserved(np.asarray([], dtype=np.uint32)).size == 0


def test_blocks_are_canonical():
    for block in RESERVED_BLOCKS:
        assert block.first_address == block.network
