"""Unit tests for address-structure profiling (repro.ipspace.structure)."""

import numpy as np
import pytest

from repro.ipspace.structure import StructureProfile, profile_addresses


def uniform_addresses(count, rng):
    return rng.integers(0, 2**32, size=count, dtype=np.uint32)


class TestProfile:
    def test_block_counts_monotone(self, rng):
        profile = profile_addresses(uniform_addresses(5000, rng))
        counts = [profile.block_counts[n] for n in profile.prefixes]
        assert counts == sorted(counts)

    def test_slash32_counts_addresses(self, rng):
        addrs = np.unique(uniform_addresses(1000, rng))
        profile = profile_addresses(addrs, prefixes=(16, 32))
        assert profile.block_counts[32] == addrs.size
        assert profile.address_count == addrs.size

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            profile_addresses([])

    def test_single_address(self):
        profile = profile_addresses(["1.2.3.4"], prefixes=(8, 24, 32))
        assert all(c == 1 for c in profile.block_counts.values())
        assert all(e == 1.0 for e in profile.occupancy_entropy.values())

    def test_rows_structure(self, rng):
        profile = profile_addresses(uniform_addresses(100, rng), prefixes=(16, 24))
        rows = profile.rows()
        assert [row["prefix"] for row in rows] == [16, 24]


class TestUniformSignature:
    def test_uniform_doubles_per_bit(self, rng):
        # 50k addresses, blocks up to /12 (4096): collision-dominated,
        # so the count doubles with each added bit.
        profile = profile_addresses(
            uniform_addresses(50_000, rng), prefixes=(8, 10, 12)
        )
        for ratio in profile.growth_ratios().values():
            assert 1.85 <= ratio <= 2.05

    def test_uniform_high_entropy(self, rng):
        profile = profile_addresses(uniform_addresses(5000, rng), prefixes=(8, 12))
        assert profile.occupancy_entropy[8] > 0.95

    def test_uniform_looks_uniform(self, rng):
        profile = profile_addresses(
            uniform_addresses(20_000, rng), prefixes=tuple(range(4, 14, 2))
        )
        assert profile.looks_uniform()

    def test_unsaturated_growth_none_when_all_sparse(self, rng):
        profile = profile_addresses(
            uniform_addresses(100, rng), prefixes=(24, 28, 32)
        )
        assert profile.unsaturated_growth() is None
        assert not profile.looks_uniform()


class TestStructuredSignature:
    def test_clustered_addresses_grow_slowly(self):
        # Everything packed into four /24s: almost no growth across the
        # mid prefixes.
        addrs = [f"60.1.{b}.{k}" for b in range(4) for k in range(1, 200)]
        profile = profile_addresses(addrs, prefixes=(16, 20, 24))
        assert profile.mean_growth(16, 24) < 1.3
        # And the unsaturated steps (all blocks hold many addresses)
        # grow far below doubling.
        assert profile.unsaturated_growth() < 1.5

    def test_skewed_occupancy_lowers_entropy(self):
        # One /16 holds 990 addresses, nine others hold one each.
        addrs = [60 * 2**24 + i for i in range(990)]
        addrs += [(61 + k) * 2**24 + (k << 16) for k in range(9)]
        profile = profile_addresses(addrs, prefixes=(16,))
        assert profile.occupancy_entropy[16] < 0.35

    def test_synthetic_internet_is_structured(self, small_scenario):
        """The generator must reproduce Kohler et al.'s finding: the
        control population is far from uniform."""
        profile = profile_addresses(
            small_scenario.control.addresses, prefixes=tuple(range(14, 28, 2))
        )
        assert not profile.looks_uniform()
        assert profile.mean_growth(16, 24) < 1.8
        assert profile.mean_entropy(16, 24) < 0.97

    def test_bots_more_structured_than_control(self, small_scenario):
        """Spatial uncleanliness in structure terms: the bot population
        is spread less evenly over its blocks (lower occupancy entropy)
        than an equal-cardinality control sample, and occupies fewer
        blocks at every profiled prefix."""
        band = tuple(range(16, 26, 2))
        bots = profile_addresses(small_scenario.bot.addresses, prefixes=band)
        size = len(small_scenario.bot)
        control_sample = small_scenario.control.sample(
            size, np.random.default_rng(1)
        )
        control = profile_addresses(control_sample.addresses, prefixes=band)
        assert bots.mean_entropy(16, 24) < control.mean_entropy(16, 24)
        for n in band:
            assert bots.block_counts[n] <= control.block_counts[n]


class TestBandValidation:
    def test_mean_growth_empty_band(self, rng):
        profile = profile_addresses(uniform_addresses(100, rng), prefixes=(8, 10))
        with pytest.raises(ValueError):
            profile.mean_growth(16, 24)

    def test_mean_entropy_empty_band(self, rng):
        profile = profile_addresses(uniform_addresses(100, rng), prefixes=(8, 10))
        with pytest.raises(ValueError):
            profile.mean_entropy(16, 24)
