"""Run manifests: directory layout, schema, CLI integration golden."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.obs import manifest, metrics, trace


FP = "deadbeefcafe0123456789abcdef0123"


@pytest.fixture
def runs_dir(tmp_path, monkeypatch):
    root = tmp_path / "runs"
    monkeypatch.setenv(manifest.RUNS_ENV, str(root))
    return root


def test_resolve_runs_dir_env_and_disable(runs_dir, monkeypatch):
    assert manifest.resolve_runs_dir() == runs_dir
    assert not runs_dir.exists()
    assert manifest.resolve_runs_dir(ensure=True) == runs_dir
    assert runs_dir.is_dir()
    monkeypatch.setenv(manifest.RUNS_ENV, "")
    assert manifest.resolve_runs_dir() is None
    assert manifest.resolve_runs_dir(ensure=True) is None


def test_new_run_dir_serial_numbering(runs_dir):
    first = manifest.new_run_dir(FP)
    second = manifest.new_run_dir(FP)
    other = manifest.new_run_dir("0123456789abcdef" + "0" * 16)
    assert first.name == f"{FP[:12]}-1"
    assert second.name == f"{FP[:12]}-2"
    assert other.name == "0123456789ab-1"  # numbering is per-fingerprint


def test_write_and_load_manifest(runs_dir):
    previous = metrics.set_registry(metrics.MetricsRegistry())
    try:
        metrics.inc("store.get.miss", 3)
        span = {"name": "cli.table2", "wall": 1.0, "cpu": 0.9, "attrs": {},
                "children": [{"name": "work", "wall": 0.95, "cpu": 0.9,
                              "attrs": {}, "children": []}]}
        path = manifest.write_manifest(
            command="table2", fingerprint=FP, seed=7,
            argv=["table2", "--small"], span=span, exit_code=0,
        )
    finally:
        metrics.set_registry(previous)

    assert path == runs_dir / f"{FP[:12]}-1" / "manifest.json"
    loaded = manifest.load_manifest(path.parent)  # dir form also works
    assert loaded["schema"] == manifest.MANIFEST_SCHEMA_VERSION
    assert loaded["command"] == "table2"
    assert loaded["fingerprint"] == FP
    assert loaded["seed"] == 7
    assert loaded["argv"] == ["table2", "--small"]
    assert loaded["exit_code"] == 0
    assert loaded["span"]["name"] == "cli.table2"
    assert loaded["span_coverage"] == pytest.approx(0.95)
    assert loaded["metrics"]["store.get.miss"]["value"] == 3
    assert set(loaded["versions"]) == {"python", "numpy", "repro", "store_format"}

    prom = (path.parent / "metrics.prom").read_text()
    assert "repro_store_get_miss 3" in prom


def test_write_manifest_disabled_returns_none(monkeypatch):
    monkeypatch.setenv(manifest.RUNS_ENV, "")
    assert manifest.write_manifest(command="x", fingerprint=FP, seed=None) is None


def test_find_run_selectors(runs_dir):
    a = manifest.new_run_dir(FP)
    (a / "manifest.json").write_text("{}")
    b = manifest.new_run_dir(FP)
    (b / "manifest.json").write_text("{}")
    assert manifest.find_run("latest") == b
    assert manifest.find_run("") == b
    assert manifest.find_run(a.name) == a
    assert manifest.find_run(FP[:6]) == b  # prefix resolves newest
    assert manifest.find_run(str(a)) == a  # filesystem path
    assert manifest.find_run("feedfacefeed") is None


def test_cli_run_writes_manifest_golden(runs_dir, capsys):
    """`uncleanliness table1 --small` leaves a complete, traceable record."""
    code = main(["table1", "--small"])
    assert code == 0

    runs = manifest.list_runs()
    assert len(runs) == 1
    loaded = manifest.load_manifest(runs[0])
    assert loaded["schema"] == 1
    assert loaded["command"] == "table1"
    assert loaded["argv"] == ["table1", "--small"]
    assert loaded["exit_code"] == 0
    assert loaded["seed"] == 7
    assert len(loaded["fingerprint"]) == 32
    assert runs[0].name.startswith(loaded["fingerprint"][:12])

    # The span tree covers the run: the CLI root wraps scenario build,
    # the experiment and rendering, and coverage stays high.
    assert loaded["span"]["name"] == "cli.table1"
    names = {child["name"] for child in loaded["span"]["children"]}
    assert "experiment.table1" in names
    assert loaded["span_coverage"] >= 0.8

    # Metrics made it in, and the prometheus sidecar agrees.
    assert any(name.startswith("store.get.") for name in loaded["metrics"])
    assert (runs[0] / "metrics.prom").read_text().startswith("# TYPE repro_")

    err = capsys.readouterr().err
    assert f"[manifest: {runs[0] / 'manifest.json'}]" in err


def test_cli_trace_renders_stored_manifest(runs_dir, capsys):
    assert main(["table1", "--small"]) == 0
    capsys.readouterr()
    assert main(["trace", "latest"]) == 0
    out = capsys.readouterr().out
    assert "command:     table1" in out
    assert "cli.table1" in out
    assert "experiment.table1" in out


def test_cli_trace_missing_run_fails(runs_dir, capsys):
    assert main(["trace", "latest"]) == 1
    assert "no recorded run matches" in capsys.readouterr().err


def test_tracer_roots_do_not_accumulate_across_runs(runs_dir):
    tracer = trace.tracer()
    before = len(tracer.roots)
    assert main(["table1", "--small"]) == 0
    assert main(["table1", "--small"]) == 0
    assert len(tracer.roots) == before
