"""Metrics layer: typed registry, exports, deterministic histogram merge."""

from __future__ import annotations

import json
import logging
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import metrics


@pytest.fixture
def registry():
    """A fresh registry installed as the process global."""
    fresh = metrics.MetricsRegistry()
    previous = metrics.set_registry(fresh)
    yield fresh
    metrics.set_registry(previous)


def test_counter_gauge_histogram_basics(registry):
    metrics.inc("hits")
    metrics.inc("hits", 4)
    metrics.set_gauge("rate", 2.5)
    metrics.observe("seconds", 0.01)
    metrics.observe("seconds", 0.02)

    assert registry.counter("hits").value == 5
    assert registry.gauge("rate").value == 2.5
    hist = registry.histogram("seconds")
    assert hist.count == 2
    assert hist.sum == pytest.approx(0.03)
    assert hist.min == 0.01 and hist.max == 0.02


def test_kind_mismatch_raises(registry):
    metrics.inc("x")
    with pytest.raises(TypeError, match="is a counter, not a gauge"):
        registry.gauge("x")


def test_snapshot_and_json_round_trip(registry):
    metrics.inc("c", 3)
    metrics.set_gauge("g", 1.5)
    metrics.observe("h", 2.0)
    snap = json.loads(registry.to_json())
    assert snap["c"] == {"type": "counter", "value": 3}
    assert snap["g"] == {"type": "gauge", "value": 1.5}
    assert snap["h"]["type"] == "histogram"
    assert snap["h"]["count"] == 1
    assert sum(snap["h"]["buckets"].values()) == 1


def test_prometheus_export_format(registry):
    metrics.inc("store.get.miss", 2)
    metrics.set_gauge("flows.per_sec", 100.0)
    metrics.observe("stage.seconds", 0.5)
    text = registry.to_prometheus()
    assert "# TYPE repro_store_get_miss counter" in text
    assert "repro_store_get_miss 2" in text
    assert "repro_flows_per_sec 100" in text
    assert "# TYPE repro_stage_seconds histogram" in text
    assert 'repro_stage_seconds_bucket{le="+Inf"} 1' in text
    assert "repro_stage_seconds_count 1" in text
    # buckets are cumulative: the occupied 0.5-ish bucket reports 1
    bucket_lines = [l for l in text.splitlines() if "_bucket" in l]
    assert all(l.endswith(" 1") for l in bucket_lines)


def test_histogram_bucket_boundaries():
    hist = metrics.Histogram(bounds=(1.0, 10.0))
    for value in (0.5, 1.0, 1.5, 10.0, 11.0):
        hist.observe(value)
    # <=1.0 catches 0.5 and 1.0; <=10.0 catches 1.5 and 10.0; +Inf the rest
    assert hist.counts == [2, 2, 1]


def test_histogram_merge_requires_matching_bounds():
    a = metrics.Histogram(bounds=(1.0, 2.0))
    b = metrics.Histogram(bounds=(1.0, 3.0))
    with pytest.raises(ValueError, match="different bounds"):
        a.merge(b)


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.lists(
            st.floats(min_value=1e-9, max_value=1e5,
                      allow_nan=False, allow_infinity=False),
            max_size=20,
        ),
        min_size=2,
        max_size=5,
    ),
    st.randoms(use_true_random=False),
)
def test_histogram_merge_is_order_deterministic(chunks, rnd):
    """Merging per-chunk histograms in any order yields identical buckets.

    This is the property that lets worker processes record privately and
    the supervisor fold results in completion order: bucket counts and
    count/min/max are integer/extremal math (exact under reordering);
    only ``sum`` is floating-point, so it is compared approximately.
    """
    def fold(order):
        total = metrics.Histogram()
        for chunk in order:
            part = metrics.Histogram()
            for value in chunk:
                part.observe(value)
            total.merge(part)
        return total

    forward = fold(chunks)
    shuffled = list(chunks)
    rnd.shuffle(shuffled)
    reordered = fold(shuffled)

    assert forward.counts == reordered.counts
    assert forward.count == reordered.count
    assert forward.min == reordered.min
    assert forward.max == reordered.max
    assert math.isclose(forward.sum, reordered.sum,
                        rel_tol=1e-12, abs_tol=1e-12)


def test_warn_event_counts_and_logs(registry, caplog):
    with caplog.at_level(logging.WARNING, logger="repro.obs.events"):
        metrics.warn_event("store.degraded", "store degraded", dir="/tmp/x")
        metrics.warn_event("store.degraded", "store degraded again")
    assert registry.counter("events.warn.store.degraded").value == 2
    assert "store degraded [store.degraded dir=/tmp/x]" in caplog.text
    assert "store degraded again [store.degraded]" in caplog.text


def test_warn_event_routes_through_caller_logger(registry, caplog):
    log = logging.getLogger("repro.engine.sampling")
    with caplog.at_level(logging.WARNING, logger="repro.engine.sampling"):
        metrics.warn_event("workers.clamped", "clamped to 4", logger=log)
    assert caplog.records[0].name == "repro.engine.sampling"
    assert registry.counter("events.warn.workers.clamped").value == 1
