"""Tracing layer: span trees, serialisation, worker grafting, no-op cost."""

from __future__ import annotations

import time

import pytest

from repro.obs import trace


@pytest.fixture
def tracer():
    """A fresh enabled tracer installed as the process global."""
    fresh = trace.Tracer(enabled=True)
    previous = trace.set_tracer(fresh)
    yield fresh
    trace.set_tracer(previous)


def test_nesting_builds_a_tree(tracer):
    with trace.span("outer"):
        with trace.span("inner-a", k=1):
            pass
        with trace.span("inner-b"):
            with trace.span("leaf"):
                pass

    assert len(tracer.roots) == 1
    outer = tracer.roots[0]
    assert outer.name == "outer"
    assert [c.name for c in outer.children] == ["inner-a", "inner-b"]
    assert outer.children[0].attrs == {"k": 1}
    assert [c.name for c in outer.children[1].children] == ["leaf"]
    assert outer.wall >= sum(c.wall for c in outer.children)


def test_span_set_attaches_attrs(tracer):
    with trace.span("op") as sp:
        sp.set(outcome="hit", n=3)
    assert tracer.roots[0].attrs == {"outcome": "hit", "n": 3}


def test_to_dict_from_dict_round_trip(tracer):
    with trace.span("root", a=1):
        with trace.span("child"):
            pass
    original = tracer.roots[0]
    restored = trace.Span.from_dict(original.to_dict())
    assert restored.name == original.name
    assert restored.attrs == original.attrs
    assert restored.wall == original.wall
    assert restored.cpu == original.cpu
    assert [c.name for c in restored.children] == ["child"]


def test_attach_grafts_worker_span_under_current(tracer):
    worker = trace.Tracer(enabled=True)
    with worker.span("mc.chunk", start=0, stop=8):
        pass
    payload = worker.roots[-1].to_dict()

    with trace.span("monte_carlo"):
        trace.attach(payload)

    mc = tracer.roots[0]
    assert [c.name for c in mc.children] == ["mc.chunk"]
    assert mc.children[0].attrs == {"start": 0, "stop": 8}


def test_attach_none_is_a_no_op(tracer):
    with trace.span("root"):
        trace.attach(None)
    assert tracer.roots[0].children == []


def test_disabled_tracer_returns_shared_noop_handle():
    fresh = trace.Tracer(enabled=False)
    previous = trace.set_tracer(fresh)
    try:
        first = trace.span("anything", k=1)
        second = trace.span("other")
        assert first is second  # one shared stateless handle, no allocation
        with first as sp:
            sp.set(ignored=True)
        assert fresh.roots == []
        trace.attach({"name": "x", "wall": 0.0, "cpu": 0.0,
                      "attrs": {}, "children": []})
        assert fresh.roots == []  # attach is also gated on enabled
    finally:
        trace.set_tracer(previous)


def test_coverage_is_child_wall_over_root_wall():
    span_dict = {
        "name": "root", "wall": 2.0, "cpu": 0.0, "attrs": {},
        "children": [
            {"name": "a", "wall": 1.0, "cpu": 0.0, "attrs": {}, "children": []},
            {"name": "b", "wall": 0.5, "cpu": 0.0, "attrs": {},
             # grandchildren must NOT double-count
             "children": [{"name": "c", "wall": 0.4, "cpu": 0.0,
                           "attrs": {}, "children": []}]},
        ],
    }
    assert trace.coverage(span_dict) == pytest.approx(0.75)
    # zero-duration root counts as fully covered by convention
    assert trace.coverage({"name": "r", "wall": 0.0, "cpu": 0.0,
                           "attrs": {}, "children": []}) == 1.0


def test_enable_disable_toggle_global():
    previous = trace.set_tracer(trace.Tracer(enabled=False))
    try:
        assert not trace.enabled()
        trace.enable()
        assert trace.enabled()
        trace.disable()
        assert not trace.enabled()
    finally:
        trace.set_tracer(previous)


def test_disabled_span_cost_is_tiny():
    """The disabled fast path must stay an attribute check, not setup work.

    Bounds the per-call cost at 2µs — ~50x the observed cost on CI-class
    hardware, while an accidental allocation-per-call regression is
    comfortably above it.
    """
    previous = trace.set_tracer(trace.Tracer(enabled=False))
    try:
        n = 100_000
        start = time.perf_counter()
        for _ in range(n):
            with trace.span("hot"):
                pass
        per_call = (time.perf_counter() - start) / n
    finally:
        trace.set_tracer(previous)
    assert per_call < 2e-6
