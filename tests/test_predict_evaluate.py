"""Predictor-generic evaluation: legacy equivalence, shared nulls,
worker invariance, codec roundtrips, and the facade's evaluation cache.
"""

import numpy as np
import pytest

from repro import api
from repro.core.blocking import blocking_test
from repro.core.prediction import prediction_test
from repro.predict import (
    compare_predictors,
    evaluate_predictor,
    make_predictor,
)
from repro.predict.evaluate import EvaluationCodec


SUBSETS = 40


def _rng(scenario):
    return np.random.default_rng(scenario.config.seed ^ 0xC1D)


@pytest.fixture
def fitted_uncleanliness(small_scenario):
    return make_predictor("uncleanliness").fit(
        {"bot-test": small_scenario.report("bot-test")}
    )


class TestLegacyEquivalence:
    def test_prediction_matches_legacy_exactly(
        self, small_scenario, fitted_uncleanliness
    ):
        """The adapted paper model through evaluate_predictor reproduces
        the legacy §5 numbers bit-for-bit — observed intersections,
        exceedance fractions, control summaries, and labels."""
        evaluation = evaluate_predictor(
            fitted_uncleanliness,
            small_scenario.report("bot"),
            small_scenario.report("control"),
            _rng(small_scenario),
            subsets=SUBSETS,
        )
        legacy = prediction_test(
            small_scenario.report("bot-test"),
            small_scenario.report("bot"),
            small_scenario.report("control"),
            _rng(small_scenario),
            subsets=SUBSETS,
        )
        assert evaluation.prediction.observed == legacy.observed
        assert evaluation.prediction.exceedance == legacy.exceedance
        assert evaluation.prediction.past_tag == legacy.past_tag
        assert evaluation.prediction.present_tag == legacy.present_tag
        for n in legacy.control:
            assert evaluation.prediction.control[n] == legacy.control[n]

    def test_blocking_matches_scenario_table3(
        self, small_scenario, fitted_uncleanliness
    ):
        evaluation = evaluate_predictor(
            fitted_uncleanliness,
            small_scenario.report("bot"),
            small_scenario.report("control"),
            _rng(small_scenario),
            partition=small_scenario.partition,
            subsets=SUBSETS,
        )
        expected = blocking_test(
            small_scenario.partition, small_scenario.report("bot-test")
        )
        assert evaluation.blocking.table3() == expected.table3()

    def test_roc_present_and_sane(self, small_scenario, fitted_uncleanliness):
        evaluation = evaluate_predictor(
            fitted_uncleanliness,
            small_scenario.report("bot"),
            small_scenario.report("control"),
            _rng(small_scenario),
            partition=small_scenario.partition,
            subsets=SUBSETS,
        )
        auc = evaluation.roc_auc()
        assert auc is not None
        assert 0.5 < auc <= 1.0  # better than coin-flip on its own feed


class TestComparison:
    @pytest.fixture(scope="class")
    def comparison(self, small_scenario):
        models = [
            make_predictor(name).fit(
                {"bot-test": small_scenario.report("bot-test")}
            )
            for name in ("uncleanliness", "recommender", "graphcluster")
        ]
        return compare_predictors(
            models,
            small_scenario.report("bot"),
            small_scenario.report("control"),
            _rng(small_scenario),
            partition=small_scenario.partition,
            subsets=SUBSETS,
        )

    def test_all_models_evaluated(self, comparison):
        assert comparison.names() == [
            "uncleanliness", "recommender", "graphcluster",
        ]
        for evaluation in comparison.evaluations:
            assert evaluation.roc_auc() is not None
            assert evaluation.blocking is not None

    def test_uncleanliness_row_equals_standalone(
        self, small_scenario, comparison, fitted_uncleanliness
    ):
        """The shared Monte-Carlo null changes nothing: the baseline's
        row in a comparison equals its standalone evaluation."""
        standalone = evaluate_predictor(
            fitted_uncleanliness,
            small_scenario.report("bot"),
            small_scenario.report("control"),
            _rng(small_scenario),
            partition=small_scenario.partition,
            subsets=SUBSETS,
        )
        row = comparison.evaluation("uncleanliness")
        assert row.prediction.observed == standalone.prediction.observed
        assert row.prediction.exceedance == standalone.prediction.exceedance
        assert row.blocking.table3() == standalone.blocking.table3()
        assert row.roc_auc() == standalone.roc_auc()

    def test_workers_bit_identical(self, small_scenario, comparison):
        models = [
            make_predictor(name).fit(
                {"bot-test": small_scenario.report("bot-test")}
            )
            for name in ("uncleanliness", "recommender", "graphcluster")
        ]
        parallel = compare_predictors(
            models,
            small_scenario.report("bot"),
            small_scenario.report("control"),
            _rng(small_scenario),
            partition=small_scenario.partition,
            subsets=SUBSETS,
            workers=2,
        )
        for serial_row, parallel_row in zip(
            comparison.evaluations, parallel.evaluations
        ):
            assert serial_row.prediction.observed == (
                parallel_row.prediction.observed
            )
            assert serial_row.prediction.exceedance == (
                parallel_row.prediction.exceedance
            )
            for n in serial_row.prediction.control:
                assert serial_row.prediction.control[n] == (
                    parallel_row.prediction.control[n]
                )

    def test_models_genuinely_differ(self, comparison):
        prints = {ev.predictor_fingerprint for ev in comparison.evaluations}
        assert len(prints) == 3
        aucs = [ev.roc_auc() for ev in comparison.evaluations]
        assert len(set(aucs)) > 1  # rivals do not collapse to one curve

    def test_manifest_carries_fingerprints(self, comparison):
        manifest = comparison.manifest()
        assert [p["name"] for p in manifest["predictors"]] == (
            comparison.names()
        )
        for entry in manifest["predictors"]:
            assert len(entry["fingerprint"]) == 32
            assert entry["roc_auc"] is not None

    def test_rejects_unfitted_and_duplicate_models(self, small_scenario):
        with pytest.raises(ValueError, match="fitted"):
            compare_predictors(
                [make_predictor("uncleanliness")],
                small_scenario.report("bot"),
                small_scenario.report("control"),
                _rng(small_scenario),
                subsets=SUBSETS,
            )
        fitted = make_predictor("uncleanliness").fit(
            {"bot-test": small_scenario.report("bot-test")}
        )
        with pytest.raises(ValueError, match="duplicate"):
            compare_predictors(
                [fitted, fitted],
                small_scenario.report("bot"),
                small_scenario.report("control"),
                _rng(small_scenario),
                subsets=SUBSETS,
            )


class TestEvaluationCodec:
    def test_roundtrip(self, small_scenario, fitted_uncleanliness):
        evaluation = evaluate_predictor(
            fitted_uncleanliness,
            small_scenario.report("bot"),
            small_scenario.report("control"),
            _rng(small_scenario),
            partition=small_scenario.partition,
            subsets=SUBSETS,
        )
        codec = EvaluationCodec()
        arrays, meta = codec.to_payload(evaluation)
        decoded = codec.from_payload(arrays, meta)
        assert decoded.predictor_name == evaluation.predictor_name
        assert decoded.predictor_fingerprint == (
            evaluation.predictor_fingerprint
        )
        assert decoded.prediction.observed == evaluation.prediction.observed
        assert decoded.prediction.exceedance == (
            evaluation.prediction.exceedance
        )
        for n in evaluation.prediction.control:
            assert decoded.prediction.control[n] == (
                evaluation.prediction.control[n]
            )
        assert decoded.blocking.table3() == evaluation.blocking.table3()
        assert decoded.roc_auc() == evaluation.roc_auc()


class TestFacadeCache:
    def test_two_predictors_never_collide(self, small_scenario):
        """Fingerprint-keyed caching: rival models over one scenario get
        distinct entries even with identical scenario and knobs."""
        run = api.run_scenario(small=True)
        baseline = api.evaluate(
            run, "uncleanliness", subsets=SUBSETS
        )
        rival = api.evaluate(run, "recommender", subsets=SUBSETS)
        assert baseline is not rival
        assert baseline.observed != rival.observed
        # Re-asking returns each model's own cached result.
        assert api.evaluate(run, "uncleanliness", subsets=SUBSETS) is baseline
        assert api.evaluate(run, "recommender", subsets=SUBSETS) is rival

    def test_params_split_cache_entries(self, small_scenario):
        run = api.run_scenario(small=True)
        defaults = api.evaluate(run, "graphcluster", subsets=SUBSETS)
        tuned = api.evaluate(
            run, "graphcluster", params={"merge_gap": 4}, subsets=SUBSETS
        )
        assert defaults is not tuned

    def test_live_rng_bypasses_cache(self, small_scenario):
        run = api.run_scenario(small=True)
        first = api.evaluate(
            run, subsets=SUBSETS, rng=np.random.default_rng(7)
        )
        second = api.evaluate(
            run, subsets=SUBSETS, rng=np.random.default_rng(7)
        )
        assert first is not second
        assert first.observed == second.observed  # same stream, same result

    def test_metric_all_persists_to_store(self, small_scenario):
        from repro.engine.store import default_store

        run = api.run_scenario(small=True)
        evaluation = api.evaluate(
            run, metric="all", subsets=SUBSETS, seed=424242
        )
        api.clear_scenario_cache()  # drop the in-memory evaluation cache
        again = api.evaluate(
            api.run_scenario(small=True), metric="all", subsets=SUBSETS,
            seed=424242,
        )
        assert again.prediction.observed == evaluation.prediction.observed
        assert again.roc_auc() == evaluation.roc_auc()

    def test_unknown_metric_rejected(self):
        with pytest.raises(ValueError, match="metric"):
            api.evaluate(metric="nonsense")

    def test_compare_defaults_to_registry(self, small_scenario):
        run = api.run_scenario(small=True)
        result = api.compare(run, subsets=SUBSETS)
        assert result.names() == [
            "uncleanliness", "recommender", "graphcluster",
        ]
        assert api.compare(run, subsets=SUBSETS) is result  # cached

    def test_compare_params_for_unknown_model_rejected(self, small_scenario):
        run = api.run_scenario(small=True)
        with pytest.raises(ValueError, match="not in the comparison"):
            api.compare(
                run,
                ["uncleanliness"],
                params={"recommender": {"blend": 0.2}},
                subsets=SUBSETS,
            )
