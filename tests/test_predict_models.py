"""Model-specific behaviour of the three registered predictors.

The load-bearing property is the adapter equivalence: the
``uncleanliness`` predictor must be **bit-identical** to calling
:class:`repro.core.uncleanliness.UncleanlinessScorer` directly, for any
training feeds — pinned here with hypothesis over arbitrary address
sets.  The rivals get behavioural checks of the mechanisms that make
them rivals (time decay and expansion for the recommender, cluster
inheritance and singleton damping for the graph clusterer).
"""

import datetime

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.report import DataClass, Report, ReportType
from repro.core.uncleanliness import UncleanlinessScorer
from repro.predict import (
    GraphClusterPredictor,
    RecommenderPredictor,
    UncleanlinessPredictor,
)
from repro.sim.timeline import PAPER_WINDOWS

addresses = st.integers(min_value=0, max_value=0xFFFFFFFF)
address_lists = st.lists(addresses, min_size=1, max_size=150)
prefix_lens = st.sampled_from([8, 16, 20, 24, 28, 32])


def report(tag, addrs, data_class=DataClass.NONE, period=None):
    return Report(
        tag=tag,
        addresses=np.unique(np.asarray(addrs, dtype=np.uint32)),
        report_type=ReportType.PROVIDED,
        data_class=data_class,
        period=period,
    )


class TestUncleanlinessAdapterEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(address_lists, address_lists, prefix_lens)
    def test_bit_identical_to_scorer(self, bot_addrs, scan_addrs, prefix_len):
        """For any two class feeds, adapter scores == direct scorer scores."""
        reports = {
            "bots": report("bots", bot_addrs, DataClass.BOTS),
            "scanning": report("scanning", scan_addrs, DataClass.SCANNING),
        }
        ranking = UncleanlinessPredictor().fit(reports).score_blocks(prefix_len)
        direct = UncleanlinessScorer(prefix_len=prefix_len).score(
            {"bots": reports["bots"], "scanning": reports["scanning"]}
        )
        np.testing.assert_array_equal(ranking.blocks, direct.blocks)
        np.testing.assert_array_equal(ranking.scores, direct.scores)

    @settings(max_examples=40, deadline=None)
    @given(address_lists, address_lists, prefix_lens)
    def test_same_class_feeds_union(self, first, second, prefix_len):
        """Two feeds of one class score like their unioned report."""
        split = {
            "feed-a": report("feed-a", first, DataClass.SPAM),
            "feed-b": report("feed-b", second, DataClass.SPAM),
        }
        merged = {
            "spam": report("spam", np.union1d(
                split["feed-a"].addresses, split["feed-b"].addresses
            ), DataClass.SPAM),
        }
        a = UncleanlinessPredictor().fit(split).score_blocks(prefix_len)
        b = UncleanlinessPredictor().fit(merged).score_blocks(prefix_len)
        np.testing.assert_array_equal(a.blocks, b.blocks)
        np.testing.assert_array_equal(a.scores, b.scores)

    def test_scenario_feeds_bit_identical(self, small_scenario):
        """The real scenario feeds, all prefixes — exact equivalence."""
        tags = ("bot", "scan", "spam")
        reports = {tag: small_scenario.report(tag) for tag in tags}
        model = UncleanlinessPredictor().fit(reports)
        grouped = {r.data_class: r for r in reports.values()}
        assert len(grouped) == len(reports)  # distinct classes
        for prefix_len in range(8, 33, 4):
            weights = model._effective_weights(grouped)
            direct = UncleanlinessScorer(
                prefix_len=prefix_len, weights=weights
            ).score(grouped)
            ranking = model.score_blocks(prefix_len)
            np.testing.assert_array_equal(ranking.blocks, direct.blocks)
            np.testing.assert_array_equal(ranking.scores, direct.scores)

    def test_unknown_class_defaults_to_unit_weight(self):
        reports = {"custom": report("custom", [1, 2, 3])}
        ranking = UncleanlinessPredictor().fit(reports).score_blocks(24)
        assert len(ranking) == 1
        assert ranking.scores[0] == pytest.approx(1.0 - np.exp(-3 / 4))


class TestRecommender:
    def _dated(self, tag, addrs, end):
        return report(
            tag, addrs, period=(end - datetime.timedelta(days=13), end)
        )

    def test_stale_feed_decays(self):
        """The same evidence scores lower from an older report."""
        window = PAPER_WINDOWS.OCTOBER
        addrs = [0x0A000001, 0x0A000002, 0x0A000003]
        fresh_end = datetime.date(2006, 10, 14)
        stale_end = datetime.date(2006, 5, 14)
        fresh = RecommenderPredictor(expand=False).fit(
            {"feed": self._dated("feed", addrs, fresh_end)}, window=window
        )
        stale = RecommenderPredictor(expand=False).fit(
            {"feed": self._dated("feed", addrs, stale_end)}, window=window
        )
        assert (
            stale.score_blocks(24).scores < fresh.score_blocks(24).scores
        ).all()

    def test_decay_halves_at_halflife(self):
        model = RecommenderPredictor(halflife_days=30.0)
        window = PAPER_WINDOWS.OCTOBER
        end = datetime.date(2006, 9, 14)  # 30 days before window end
        model.fit({"feed": self._dated("feed", [1], end)}, window=window)
        assert model._feed_decay("feed") == pytest.approx(0.5)

    def test_expansion_is_strict_superset(self, small_scenario):
        training = {"bot-test": small_scenario.report("bot-test")}
        expanded = RecommenderPredictor(expand=True).fit(training)
        compact = RecommenderPredictor(expand=False).fit(training)
        wide = expanded.score_blocks(24).blocks
        narrow = compact.score_blocks(24).blocks
        assert np.isin(narrow, wide).all()
        assert wide.size > narrow.size

    def test_expanded_blocks_score_below_their_sources(self, small_scenario):
        training = {"bot-test": small_scenario.report("bot-test")}
        model = RecommenderPredictor(expand=True, spatial=0.25).fit(training)
        ranking = model.score_blocks(24)
        observed = RecommenderPredictor(expand=False, spatial=0.25).fit(
            training
        ).score_blocks(24)
        fresh = np.setdiff1d(ranking.blocks, observed.blocks)
        assert fresh.size > 0
        assert ranking.scores_of(fresh).max() < observed.scores.max()

    def test_neighborhood_recommends_unseen_blocks(self):
        """A feed gains intensity on blocks only its neighbor reported."""
        shared = [0x0A000001, 0x0A000101]
        only_b = [0x0A000201]
        training = {
            "a": report("a", shared),
            "b": report("b", shared + only_b),
        }
        blended = RecommenderPredictor(
            blend=0.5, spatial=0.0, expand=False
        ).fit(training)
        solo = RecommenderPredictor(
            blend=0.0, spatial=0.0, expand=False
        ).fit({"a": training["a"]})
        assert blended.score_blocks(24).score_of("10.0.2.1") > 0.0
        assert solo.score_blocks(24).score_of("10.0.2.1") == 0.0

    def test_param_validation(self):
        with pytest.raises(ValueError):
            RecommenderPredictor(halflife_days=0)
        with pytest.raises(ValueError):
            RecommenderPredictor(blend=1.5)
        with pytest.raises(ValueError):
            RecommenderPredictor(spatial=-0.1)


class TestGraphCluster:
    def test_adjacent_blocks_share_cluster(self):
        addrs = [0x0A000001, 0x0A000101, 0x0A00FF01, 0x14000001]
        model = GraphClusterPredictor(merge_gap=1).fit(
            {"feed": report("feed", addrs)}
        )
        labels = model.cluster_ids(24)
        assert labels[0] == labels[1]  # adjacent /24s merge
        assert labels[2] != labels[1]  # big gap splits
        assert labels[3] != labels[2]  # different parent splits

    def test_merge_gap_bridges_holes(self):
        addrs = [0x0A000001, 0x0A000201]  # /24s two apart (one hole)
        tight = GraphClusterPredictor(merge_gap=1).fit(
            {"feed": report("feed", addrs)}
        )
        loose = GraphClusterPredictor(merge_gap=2).fit(
            {"feed": report("feed", addrs)}
        )
        assert tight.cluster_ids(24)[0] != tight.cluster_ids(24)[1]
        assert loose.cluster_ids(24)[0] == loose.cluster_ids(24)[1]

    def test_members_inherit_cluster_score(self):
        # One strong /24 (3 addresses) adjacent to one weak /24.
        addrs = [0x0A000001, 0x0A000002, 0x0A000003, 0x0A000101]
        ranking = GraphClusterPredictor().fit(
            {"feed": report("feed", addrs)}
        ).score_blocks(24)
        assert len(ranking) == 2
        assert ranking.scores[0] == ranking.scores[1]
        expected = 1.0 - np.exp(-(np.log1p(3) + np.log1p(1)) / 4.0)
        assert ranking.scores[0] == pytest.approx(expected)

    def test_singleton_damping(self):
        lone = GraphClusterPredictor(
            min_support=2, singleton_penalty=0.5
        ).fit({"feed": report("feed", [0x0A000001])})
        supported = GraphClusterPredictor(
            min_support=2, singleton_penalty=0.5
        ).fit({"feed": report("feed", [0x0A000001, 0x0A000002])})
        lone_score = lone.score_blocks(24).scores[0]
        base = 1.0 - np.exp(-np.log1p(1) / 4.0)
        assert lone_score == pytest.approx(0.5 * base)
        # Two addresses meet min_support: no damping.
        assert supported.score_blocks(24).scores[0] == pytest.approx(
            1.0 - np.exp(-np.log1p(2) / 4.0)
        )

    def test_weak_member_of_strong_run_outranks_lone_strong_block(self):
        run = [  # three adjacent /24s, one address each
            0x0A000001, 0x0A000101, 0x0A000201,
        ]
        lone = [0x14000001, 0x14000002]  # one /24, two addresses
        ranking = GraphClusterPredictor().fit(
            {"feed": report("feed", run + lone)}
        ).score_blocks(24)
        run_score = ranking.score_of("10.0.2.1")
        lone_score = ranking.score_of("20.0.0.1")
        assert run_score > lone_score

    @settings(max_examples=40, deadline=None)
    @given(address_lists, prefix_lens)
    def test_cluster_invariants(self, addrs, prefix_len):
        model = GraphClusterPredictor().fit({"feed": report("feed", addrs)})
        ranking = model.score_blocks(prefix_len)
        labels = model.cluster_ids(prefix_len)
        assert labels.size == len(ranking)
        if labels.size:
            # Labels are 0..k contiguous and non-decreasing over sorted
            # blocks (single-link over a sorted axis).
            assert labels[0] == 0
            assert set(np.diff(labels)) <= {0, 1}
        # Equal label => equal score (members inherit cluster score).
        for label in np.unique(labels):
            member_scores = ranking.scores[labels == label]
            assert np.unique(member_scores).size == 1

    def test_param_validation(self):
        with pytest.raises(ValueError):
            GraphClusterPredictor(merge_gap=-1)
        with pytest.raises(ValueError):
            GraphClusterPredictor(min_support=0)
        with pytest.raises(ValueError):
            GraphClusterPredictor(singleton_penalty=2.0)
        with pytest.raises(ValueError):
            GraphClusterPredictor(tau=0.0)
