"""Protocol conformance of every registered predictor.

One parametrized suite over the registry: determinism, fingerprint
stability, ranking/score consistency, fitted-state discipline.  A model
added to the registry later is covered here automatically.
"""

import numpy as np
import pytest

from repro.predict import (
    BasePredictor,
    BlockRanking,
    NotFittedError,
    Predictor,
    list_predictors,
    make_predictor,
    register_predictor,
)
from repro.predict.registry import _REGISTRY, DEFAULT_PREDICTORS


def _training(scenario):
    return {
        "bot-test": scenario.report("bot-test"),
        "spam": scenario.report("spam"),
    }


@pytest.fixture(params=sorted(list_predictors()))
def model_name(request):
    return request.param


@pytest.fixture
def fitted(model_name, small_scenario):
    return make_predictor(model_name).fit(_training(small_scenario))


class TestRegistry:
    def test_builtins_registered(self):
        assert set(DEFAULT_PREDICTORS) <= set(list_predictors())
        assert list_predictors() == sorted(list_predictors())

    def test_unknown_name_lists_available(self):
        with pytest.raises(ValueError, match="uncleanliness"):
            make_predictor("no-such-model")

    def test_constructor_params_forwarded(self):
        model = make_predictor("graphcluster", tau=2.0, merge_gap=3)
        assert model.tau == 2.0
        assert model.merge_gap == 3

    def test_reregistration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_predictor(
                "uncleanliness", lambda **kw: make_predictor("uncleanliness")
            )

    def test_registration_roundtrip(self):
        name = "test-only-model"
        register_predictor(name, lambda **kw: make_predictor("graphcluster"))
        try:
            assert name in list_predictors()
            assert isinstance(make_predictor(name), BasePredictor)
        finally:
            _REGISTRY.pop(name, None)


class TestConformance:
    def test_satisfies_protocol(self, fitted):
        assert isinstance(fitted, Predictor)
        assert isinstance(fitted.name, str) and fitted.name

    def test_unfitted_raises(self, model_name):
        model = make_predictor(model_name)
        assert not model.fitted
        with pytest.raises(NotFittedError):
            model.score_blocks(24)
        with pytest.raises(NotFittedError):
            model.rank()

    def test_unfitted_fingerprint_differs_from_fitted(
        self, model_name, small_scenario
    ):
        model = make_predictor(model_name)
        unfitted = model.fingerprint()
        fitted = model.fit(_training(small_scenario)).fingerprint()
        assert unfitted != fitted

    def test_fit_returns_self_and_sets_state(self, model_name, small_scenario):
        model = make_predictor(model_name)
        assert model.fit(_training(small_scenario)) is model
        assert model.fitted
        assert set(model.training) == {"bot-test", "spam"}
        assert model.training_cardinality == len(
            np.union1d(
                small_scenario.report("bot-test").addresses,
                small_scenario.report("spam").addresses,
            )
        )

    def test_fit_rejects_empty_and_non_reports(self, model_name):
        model = make_predictor(model_name)
        with pytest.raises(ValueError):
            model.fit({})
        with pytest.raises(TypeError):
            model.fit({"x": np.arange(4, dtype=np.uint32)})

    def test_ranking_shape(self, fitted):
        for prefix_len in (16, 24, 32):
            ranking = fitted.score_blocks(prefix_len)
            assert isinstance(ranking, BlockRanking)
            assert ranking.prefix_len == prefix_len
            assert ranking.blocks.dtype == np.uint32
            assert (np.diff(ranking.blocks.astype(np.int64)) > 0).all()
            assert (ranking.scores >= 0.0).all()
            assert (ranking.scores <= 1.0).all()

    def test_invalid_prefix_rejected(self, fitted):
        with pytest.raises(ValueError):
            fitted.score_blocks(33)
        with pytest.raises(ValueError):
            fitted.score_blocks(-1)

    def test_deterministic_across_instances(self, model_name, small_scenario):
        first = make_predictor(model_name).fit(_training(small_scenario))
        second = make_predictor(model_name).fit(_training(small_scenario))
        for prefix_len in (20, 24, 28):
            a = first.score_blocks(prefix_len)
            b = second.score_blocks(prefix_len)
            np.testing.assert_array_equal(a.blocks, b.blocks)
            np.testing.assert_array_equal(a.scores, b.scores)

    def test_fit_order_irrelevant(self, model_name, small_scenario):
        training = _training(small_scenario)
        reversed_training = dict(reversed(list(training.items())))
        a = make_predictor(model_name).fit(training).score_blocks(24)
        b = make_predictor(model_name).fit(reversed_training).score_blocks(24)
        np.testing.assert_array_equal(a.blocks, b.blocks)
        np.testing.assert_array_equal(a.scores, b.scores)

    def test_fingerprint_stable_and_refit_invariant(
        self, model_name, small_scenario
    ):
        training = _training(small_scenario)
        model = make_predictor(model_name).fit(training)
        fp = model.fingerprint()
        assert fp == model.fingerprint()
        assert fp == make_predictor(model_name).fit(training).fingerprint()

    def test_fingerprint_tracks_training(self, model_name, small_scenario):
        base = make_predictor(model_name).fit(_training(small_scenario))
        other = make_predictor(model_name).fit(
            {"bot-test": small_scenario.report("bot-test")}
        )
        assert base.fingerprint() != other.fingerprint()

    def test_fingerprints_distinct_across_models(self, small_scenario):
        training = _training(small_scenario)
        prints = {
            name: make_predictor(name).fit(training).fingerprint()
            for name in list_predictors()
        }
        assert len(set(prints.values())) == len(prints)

    def test_rank_consistent_with_scores(self, fitted):
        ranking = fitted.score_blocks(24)
        ranked = fitted.rank(24)
        np.testing.assert_array_equal(ranked, ranking.ranked_blocks())
        scores = ranking.scores_of(ranked)
        assert (np.diff(scores) <= 1e-12).all()  # descending by score
        top3 = fitted.rank(24, count=3)
        np.testing.assert_array_equal(top3, ranked[:3])

    def test_refit_clears_ranking_cache(self, model_name, small_scenario):
        model = make_predictor(model_name).fit(_training(small_scenario))
        before = model.score_blocks(24)
        model.fit({"spam": small_scenario.report("spam")})
        after = model.score_blocks(24)
        assert not (
            before.blocks.shape == after.blocks.shape
            and (before.blocks == after.blocks).all()
            and (before.scores == after.scores).all()
        )


class TestBlockRanking:
    def test_rejects_unsorted_blocks(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            BlockRanking(
                prefix_len=24,
                blocks=np.array([512, 256], dtype=np.uint32),
                scores=np.array([0.5, 0.5]),
            )

    def test_rejects_misaligned_arrays(self):
        with pytest.raises(ValueError):
            BlockRanking(
                prefix_len=24,
                blocks=np.array([256], dtype=np.uint32),
                scores=np.array([0.5, 0.1]),
            )

    def test_lookup_defaults_to_zero(self):
        ranking = BlockRanking(
            prefix_len=24,
            blocks=np.array([0x0A000000], dtype=np.uint32),
            scores=np.array([0.7]),
        )
        assert ranking.score_of("10.0.0.99") == 0.7
        assert ranking.score_of("11.0.0.1") == 0.0
        looked = ranking.scores_of(
            np.array([0x0A000001, 0x0B000001], dtype=np.uint32)
        )
        np.testing.assert_allclose(looked, [0.7, 0.0])

    def test_total_order_breaks_ties_by_block(self):
        ranking = BlockRanking(
            prefix_len=24,
            blocks=np.array([256, 512, 768], dtype=np.uint32),
            scores=np.array([0.5, 0.9, 0.5]),
        )
        np.testing.assert_array_equal(
            ranking.ranked_blocks(), [512, 256, 768]
        )

    def test_blocklist_threshold_inclusive(self):
        ranking = BlockRanking(
            prefix_len=24,
            blocks=np.array([256, 512], dtype=np.uint32),
            scores=np.array([0.5, 0.4]),
        )
        assert [str(b) for b in ranking.blocklist(0.5)] == ["0.0.1.0/24"]
