"""Property-based tests (hypothesis) on the core data structures.

Invariants of address arithmetic, CIDR masking, report algebra and the
payload predicate that must hold for *any* input, not just the curated
cases in the unit tests.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import cidr as rcidr
from repro.ipspace import cidr as icidr
from repro.core.report import Report
from repro.core.stats import exceedance_fraction, summarize
from repro.flows.record import FlowRecord, Protocol, TCPFlags
from repro.ipspace.addr import as_int, as_str, block_size, prefix_mask
from repro.ipspace.cidr import CIDRBlock, contains, mask_address, unique_blocks

addresses = st.integers(min_value=0, max_value=0xFFFFFFFF)
prefixes = st.integers(min_value=0, max_value=32)
address_lists = st.lists(addresses, min_size=0, max_size=200)


class TestAddressProperties:
    @given(addresses)
    def test_str_int_round_trip(self, value):
        assert as_int(as_str(value)) == value

    @given(prefixes)
    def test_mask_times_size_covers_space(self, n):
        assert (prefix_mask(n) | (block_size(n) - 1)) == 0xFFFFFFFF

    @given(addresses, prefixes)
    def test_masking_is_idempotent(self, address, n):
        once = mask_address(address, n)
        assert mask_address(once, n) == once

    @given(addresses, prefixes)
    def test_masked_address_within_block(self, address, n):
        block = CIDRBlock.containing(address, n)
        assert block.first_address <= address <= block.last_address

    @given(addresses, prefixes, prefixes)
    def test_coarser_mask_subsumes_finer(self, address, n1, n2):
        coarse, fine = min(n1, n2), max(n1, n2)
        fine_block = CIDRBlock.containing(address, fine)
        coarse_block = CIDRBlock.containing(address, coarse)
        assert fine_block.subblock_of(coarse_block)

    @given(addresses, addresses, prefixes)
    def test_same_block_iff_same_mask(self, a, b, n):
        same_block = CIDRBlock.containing(a, n) == CIDRBlock.containing(b, n)
        assert same_block == (mask_address(a, n) == mask_address(b, n))


class TestBlockSetProperties:
    @given(address_lists, prefixes)
    def test_block_count_bounded(self, addrs, n):
        arr = np.asarray(addrs, dtype=np.uint32)
        count = unique_blocks(arr, n).size
        assert count <= max(len(set(addrs)), 0) or count == 0
        assert count <= block_size(0) // max(block_size(n), 1) + 1

    @given(address_lists)
    def test_block_count_monotone_in_prefix(self, addrs):
        arr = np.asarray(addrs, dtype=np.uint32)
        counts = [unique_blocks(arr, n).size for n in range(0, 33, 4)]
        assert counts == sorted(counts)

    @given(address_lists, prefixes)
    def test_every_member_satisfies_inclusion(self, addrs, n):
        arr = np.asarray(addrs, dtype=np.uint32)
        blocks = unique_blocks(arr, n)
        assert contains(arr, blocks, n).all()

    @given(address_lists, address_lists, prefixes)
    def test_intersection_bounded_by_block_counts(self, a, b, n):
        ra = Report.from_addresses("a", np.asarray(a, dtype=np.uint32))
        rb = Report.from_addresses("b", np.asarray(b, dtype=np.uint32))
        inter = rcidr.intersection_count(ra, rb, n)
        assert inter <= min(icidr.block_count(ra, n), icidr.block_count(rb, n))


class TestReportProperties:
    @given(address_lists, address_lists)
    def test_union_cardinality(self, a, b):
        ra = Report.from_addresses("a", np.asarray(a, dtype=np.uint32))
        rb = Report.from_addresses("b", np.asarray(b, dtype=np.uint32))
        union = ra | rb
        inter = ra & rb
        assert len(union) == len(ra) + len(rb) - len(inter)

    @given(address_lists, address_lists)
    def test_difference_disjoint_from_other(self, a, b):
        ra = Report.from_addresses("a", np.asarray(a, dtype=np.uint32))
        rb = Report.from_addresses("b", np.asarray(b, dtype=np.uint32))
        assert len((ra - rb) & rb) == 0

    @given(address_lists, address_lists)
    def test_partition_identity(self, a, b):
        ra = Report.from_addresses("a", np.asarray(a, dtype=np.uint32))
        rb = Report.from_addresses("b", np.asarray(b, dtype=np.uint32))
        assert len(ra & rb) + len(ra - rb) == len(ra)

    @given(address_lists)
    def test_idempotent_set_ops(self, a):
        r = Report.from_addresses("r", np.asarray(a, dtype=np.uint32))
        assert len(r | r) == len(r)
        assert len(r & r) == len(r)
        assert len(r - r) == 0

    @given(address_lists, st.integers(min_value=0, max_value=50))
    def test_sample_invariants(self, a, k):
        r = Report.from_addresses("r", np.asarray(a, dtype=np.uint32))
        if k > len(r):
            return
        if k == 0:
            return
        sample = r.sample(k, np.random.default_rng(0))
        assert len(sample) == k
        assert all(addr in r for addr in sample)


class TestFlowProperties:
    flow_args = st.tuples(
        st.integers(min_value=1, max_value=100),  # packets
        st.integers(min_value=0, max_value=5000),  # extra bytes
        st.integers(min_value=0, max_value=63),  # flags
        st.sampled_from([Protocol.TCP, Protocol.UDP, Protocol.ICMP]),
    )

    @given(flow_args)
    def test_payload_consistency(self, args):
        packets, extra, flags, proto = args
        octets = packets * 1 + extra  # always >= 1 byte per packet
        flow = FlowRecord(
            src_addr=1, dst_addr=2, src_port=1, dst_port=2, protocol=proto,
            packets=packets, octets=octets, tcp_flags=flags,
            start_time=0.0, end_time=1.0,
        )
        assert flow.payload_bytes >= 0
        if flow.is_payload_bearing:
            assert proto == Protocol.TCP
            assert flow.payload_bytes >= 36
            assert flags & TCPFlags.ACK


class TestStatsProperties:
    values = st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        min_size=1,
        max_size=100,
    )

    @given(values)
    def test_summary_ordering(self, xs):
        s = summarize(xs)
        assert s.minimum <= s.q05 <= s.q25 <= s.median <= s.q75 <= s.q95 <= s.maximum
        # The mean can drift a few ULP outside [min, max] (float summation).
        slack = 1e-9 * max(1.0, abs(s.minimum), abs(s.maximum))
        assert s.minimum - slack <= s.mean <= s.maximum + slack

    @given(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), values)
    def test_exceedance_bounds(self, observed, xs):
        frac = exceedance_fraction(observed, xs)
        assert 0.0 <= frac <= 1.0

    @given(values)
    def test_exceeding_everything(self, xs):
        assert exceedance_fraction(max(xs) + 1, xs) == 1.0
        assert exceedance_fraction(min(xs) - 1, xs) == 0.0


class TestBlocklistProperties:
    from repro.core.blocklist import Blocklist  # noqa: F401 (import check)

    blocks = st.lists(
        st.integers(min_value=0, max_value=0xFFFFFF).map(lambda v: v << 8),
        min_size=1,
        max_size=30,
    )
    days = st.integers(min_value=0, max_value=200)

    @given(blocks, days)
    def test_listed_blocks_always_match_their_addresses(self, nets, day):
        from repro.core.blocklist import Blocklist
        from repro.ipspace.cidr import CIDRBlock

        bl = Blocklist(default_ttl_days=10)
        for net in nets:
            bl.add_block(CIDRBlock(net, 24), day=day)
        for net in nets:
            assert bl.is_blocked(net + 7, day=day)
            assert not bl.is_blocked(net + 7, day=day + 10)

    @given(blocks, days, days)
    def test_prune_never_drops_active_entries(self, nets, add_day, probe_day):
        from repro.core.blocklist import Blocklist
        from repro.ipspace.cidr import CIDRBlock

        bl = Blocklist(default_ttl_days=10)
        for net in nets:
            bl.add_block(CIDRBlock(net, 24), day=add_day)
        active_before = {e.block.network for e in bl.entries(day=probe_day)}
        bl.prune(probe_day)
        active_after = {e.block.network for e in bl.entries(day=probe_day)}
        assert active_before == active_after


class TestPrefixTableProperties:
    prefix_lists = st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=0xFFFFFFFF),
            st.integers(min_value=8, max_value=28),
        ),
        min_size=1,
        max_size=25,
    )

    @given(prefix_lists, st.lists(addresses, min_size=1, max_size=40))
    def test_lpm_matches_brute_force(self, raw_prefixes, probes):
        from repro.ipspace.clusters import PrefixTable
        from repro.ipspace.cidr import CIDRBlock

        table = PrefixTable(
            [CIDRBlock(net, length) for net, length in raw_prefixes]
        )
        for probe in probes:
            expected = None
            for block in table.prefixes:
                if block.contains(probe) and (
                    expected is None or block.prefix_len > expected.prefix_len
                ):
                    expected = block
            assert table.lookup(probe) == expected

    @given(prefix_lists)
    def test_members_of_prefix_resolve_to_it_or_deeper(self, raw_prefixes):
        from repro.ipspace.clusters import PrefixTable
        from repro.ipspace.cidr import CIDRBlock

        table = PrefixTable(
            [CIDRBlock(net, length) for net, length in raw_prefixes]
        )
        for block in table.prefixes:
            found = table.lookup(block.first_address)
            assert found is not None
            assert found.subblock_of(block) or block.subblock_of(found)


class TestROCProperties:
    scored = st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=1, allow_nan=False),
            st.booleans(),
        ),
        min_size=2,
        max_size=80,
    ).filter(
        lambda rows: any(label for _, label in rows)
        and any(not label for _, label in rows)
    )

    @given(scored)
    def test_auc_bounds_and_rate_monotonicity(self, rows):
        from repro.core.roc import roc_curve

        scores = [s for s, _ in rows]
        labels = [l for _, l in rows]
        curve = roc_curve(scores, labels)
        assert 0.0 <= curve.auc() <= 1.0
        assert (np.diff(curve.tpr) >= 0).all()
        assert (np.diff(curve.fpr) >= 0).all()
        assert curve.tpr[-1] == 1.0 and curve.fpr[-1] == 1.0

    @given(scored)
    def test_label_inversion_flips_auc(self, rows):
        from repro.core.roc import auc

        scores = [s for s, _ in rows]
        labels = [l for _, l in rows]
        flipped = [not l for l in labels]
        assert auc(scores, labels) + auc(scores, flipped) == pytest.approx(
            1.0, abs=1e-9
        )
