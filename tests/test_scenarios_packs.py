"""Tests for the scenario-pack library and its end-to-end threading.

Covers the registry contract, the bit-identity of the identity pack,
every built-in pack running through the evaluate/compare/fleet APIs, the
per-AS vantage shards, and the headline behavioural claim: at least one
pack reorders the predictor leaderboard relative to the paper's world.
"""

import numpy as np
import pytest

from repro import api
from repro.core.scenario import ScenarioConfig
from repro.scenarios import (
    BUILTIN_PACK_NAMES,
    ScenarioPack,
    get_pack,
    list_packs,
    pack_names,
    register_pack,
)
from repro.scenarios import packs as packs_module


class TestRegistry:
    def test_builtins_registered(self):
        assert set(BUILTIN_PACK_NAMES) == {
            "paper-default",
            "attack-wave",
            "dhcp-churn",
            "prefix-reassignment",
            "slow-scanner-flood",
            "sinkhole-takedown",
        }
        assert pack_names() == sorted(BUILTIN_PACK_NAMES)
        assert [p.name for p in list_packs()] == pack_names()

    def test_unknown_pack_lists_names(self):
        with pytest.raises(KeyError, match="attack-wave"):
            get_pack("nope")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_pack(ScenarioPack(
                name="paper-default", description="dup", transform=lambda c: c
            ))

    def test_register_and_use_custom_pack(self):
        name = "test-custom-pack"
        try:
            register_pack(ScenarioPack(
                name=name,
                description="shifted seed",
                transform=lambda c: c,
            ))
            assert get_pack(name).build(small=True) == ScenarioConfig.small()
        finally:
            packs_module._PACKS.pop(name, None)


class TestBuild:
    @pytest.mark.parametrize("name", BUILTIN_PACK_NAMES)
    def test_every_pack_builds_and_validates(self, name):
        config = get_pack(name).build(small=True)
        config.validate()
        if name == "paper-default":
            assert config.fingerprint() == ScenarioConfig.small().fingerprint()
        else:
            assert config.fingerprint() != ScenarioConfig.small().fingerprint()

    def test_seed_override(self):
        config = get_pack("dhcp-churn").build(small=True, seed=99)
        assert config.seed == 99

    def test_base_and_small_conflict(self):
        with pytest.raises(ValueError, match="not both"):
            get_pack("dhcp-churn").build(ScenarioConfig(), small=True)

    def test_build_over_explicit_base(self):
        base = ScenarioConfig.small(seed=4)
        config = get_pack("slow-scanner-flood").build(base)
        assert config.seed == 4
        assert config.traffic.slow_scanner_fraction == 0.85

    def test_invalid_pack_fails_at_build(self):
        bad = ScenarioPack(
            name="bad", description="broken",
            transform=lambda c: ScenarioConfig(control_size=-1),
        )
        with pytest.raises(ValueError, match="control_size"):
            bad.build(small=True)


class TestEndToEnd:
    @pytest.mark.parametrize("name", BUILTIN_PACK_NAMES)
    def test_pack_runs_through_evaluate(self, name):
        run = api.run_pack(name, small=True)
        result = api.evaluate(run, metric="prediction", subsets=10)
        assert result.past_tag == "bot-test"
        assert set(result.observed) == set(result.prefixes)

    def test_run_pack_warm_rerun_skips_simulation(self):
        from repro.core.stages import scenario_engine

        api.run_pack("dhcp-churn", small=True).scenario.reports
        engine = scenario_engine()
        before = dict(engine.build_counts)
        api.run_pack("dhcp-churn", small=True).scenario.reports
        assert engine.build_counts == before

    def test_evaluate_pack_keyword(self):
        # pack= over the default base matches run_pack explicitly.
        direct = api.evaluate(
            api.run_pack("sinkhole-takedown", small=True),
            metric="prediction", subsets=10,
        )
        keyed = api.evaluate(
            ScenarioConfig.small(), metric="prediction", subsets=10,
            pack="sinkhole-takedown",
        )
        assert direct.observed == keyed.observed

    def test_compare_pack_keyword(self):
        result = api.compare(
            ScenarioConfig.small(), ["uncleanliness"], subsets=10,
            pack="slow-scanner-flood",
        )
        assert result.names() == ["uncleanliness"]

    def test_fleet_over_pack_world(self):
        result = api.run_fleet(count=2, small=True, pack="dhcp-churn")
        assert len(result.clearinghouse.available) == 2
        manifest = result.manifest()
        assert all(
            entry["status"] == "ok" for entry in manifest["shards"].values()
        )

    def test_run_fleet_rejects_pack_with_explicit_fleet(self):
        from repro.fleet import heterogeneous_fleet

        fleet = heterogeneous_fleet(2)
        with pytest.raises(ValueError, match="fleet=None"):
            api.run_fleet(fleet, pack="dhcp-churn")


class TestVantageShards:
    def test_vantage_requires_as_world(self):
        from repro.fleet import heterogeneous_fleet

        with pytest.raises(ValueError, match="AS-structured"):
            heterogeneous_fleet(2, vantage="as")

    def test_vantage_fleet_fingerprint_differs(self):
        from repro.fleet import heterogeneous_fleet

        plain = heterogeneous_fleet(2, pack="attack-wave")
        pinned = heterogeneous_fleet(2, pack="attack-wave", vantage="as")
        assert plain.fingerprint() != pinned.fingerprint()
        assert [s.vantage_as for s in pinned.shards] == [0, 1]

    def test_observed_feeds_restricted_provided_global(self):
        from repro.fleet import heterogeneous_fleet
        from repro.fleet.supervisor import scenario_reports

        fleet = heterogeneous_fleet(3, pack="attack-wave", vantage="as")
        shard = fleet.shards[2]
        limited = scenario_reports(shard, fleet.feed_tags)
        full = scenario_reports(
            type(shard)(name=shard.name, config=shard.config),
            fleet.feed_tags,
        )
        scenario = api.run_scenario(shard.config).scenario
        internet = scenario.internet
        vantage16 = internet.slash16[
            internet.topology.as_of_net16 == shard.vantage_as
        ]
        for tag in ("scan", "spam", "control"):
            addresses = limited[tag].addresses
            assert np.isin(
                addresses & np.uint32(0xFFFF0000), vantage16
            ).all()
            assert len(limited[tag]) <= len(full[tag])
        for tag in ("bot", "phish", "bot-test"):
            assert np.array_equal(
                limited[tag].addresses, full[tag].addresses
            )

    def test_vantage_fleet_end_to_end(self):
        result = api.run_fleet(
            count=2, small=True, pack="attack-wave", vantage="as"
        )
        assert len(result.clearinghouse.available) == 2


class TestPackChangesConclusions:
    def test_attack_wave_reorders_predictor_ranking(self):
        """An AS-structured wave world demotes the recommender.

        In the paper's flat world the leaderboard is recommender >
        uncleanliness > graphcluster; under ``attack-wave`` arrivals
        come in deep four-week bursts, so the recommender's
        exponentially-decayed co-occurrence evidence is stale by test
        time and it drops to the bottom.  The exact AUCs are
        scale-dependent; the *order* changing is the point — a pack is
        a world in which the paper's conclusions can flip.
        """
        baseline = api.compare(
            api.run_pack("paper-default", small=True), subsets=40
        )
        wave = api.compare(
            api.run_pack("attack-wave", small=True), subsets=40
        )
        baseline_order = [name for name, _ in baseline.auc_ranking()]
        wave_order = [name for name, _ in wave.auc_ranking()]
        assert baseline_order != wave_order
        assert baseline_order[0] == "recommender"
        assert wave_order[-1] == "recommender"
