"""Unit tests for the autonomous-system layer (repro.sim.asys)."""

import numpy as np
import pytest

from repro.sim.asys import (
    ASConfig,
    TIER_MID,
    TIER_STUB,
    TIER_TRANSIT,
    flat_topology,
    generate_topology,
)


@pytest.fixture(scope="module")
def topology():
    return generate_topology(ASConfig(), 400, np.random.default_rng(11))


class TestFlatTopology:
    def test_one_stub_per_prefix(self):
        topo = flat_topology(40)
        assert topo.flat
        assert topo.num_as == topo.num_prefixes == 40
        assert np.array_equal(topo.as_of_net16, np.arange(40))
        assert (topo.tier == TIER_STUB).all()
        assert (topo.provider == -1).all()

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            flat_topology(0)

    def test_arrays_read_only(self):
        topo = flat_topology(8)
        with pytest.raises(ValueError):
            topo.as_of_net16[0] = 3


class TestGenerateTopology:
    def test_every_as_announces_at_least_one_prefix(self, topology):
        counts = np.bincount(topology.as_of_net16, minlength=topology.num_as)
        assert (counts >= 1).all()
        assert counts.sum() == topology.num_prefixes == 400

    def test_prefix_counts_heavy_tailed(self, topology):
        counts = np.bincount(topology.as_of_net16, minlength=topology.num_as)
        # A handful of hypergiants announce far more than the median AS.
        assert counts.max() >= 5 * np.median(counts)

    def test_tier_structure(self, topology):
        tiers = topology.tier
        assert (tiers[:1] == TIER_TRANSIT).any()
        assert {TIER_TRANSIT, TIER_MID, TIER_STUB} == set(np.unique(tiers))
        # Transit has no provider; everyone else homes on a higher tier.
        transit = tiers == TIER_TRANSIT
        assert (topology.provider[transit] == -1).all()
        homed = topology.provider[~transit]
        assert (homed >= 0).all()
        assert (tiers[homed] < tiers[~transit]).all()

    def test_tier_correlated_posture(self):
        topo = generate_topology(
            ASConfig(num_as=200), 600, np.random.default_rng(5)
        )
        unclean_by_tier = [
            topo.base_uncleanliness[topo.tier == t].mean()
            for t in (TIER_TRANSIT, TIER_MID, TIER_STUB)
        ]
        cleanup_by_tier = [
            topo.cleanup_days[topo.tier == t].mean()
            for t in (TIER_TRANSIT, TIER_MID, TIER_STUB)
        ]
        # Stubs are dirtier and slower to clean up than the transit core.
        assert unclean_by_tier[0] < unclean_by_tier[2]
        assert cleanup_by_tier[0] < cleanup_by_tier[2]

    def test_duration_factor_reference(self, topology):
        factor = topology.duration_factor(ASConfig().reference_cleanup_days)
        assert factor.shape == (topology.num_as,)
        assert (factor > 0).all()
        np.testing.assert_allclose(
            factor * ASConfig().reference_cleanup_days, topology.cleanup_days
        )

    def test_prefixes_of_roundtrip(self, topology):
        some_as = int(topology.as_of_net16[0])
        members = topology.prefixes_of(some_as)
        assert 0 in members
        assert (topology.as_of_net16[members] == some_as).all()

    def test_more_as_than_prefixes_clamped(self):
        topo = generate_topology(
            ASConfig(num_as=500), 30, np.random.default_rng(2)
        )
        assert topo.num_as == 30
        counts = np.bincount(topo.as_of_net16, minlength=topo.num_as)
        assert (counts == 1).all()

    def test_deterministic(self):
        a = generate_topology(ASConfig(), 120, np.random.default_rng(77))
        b = generate_topology(ASConfig(), 120, np.random.default_rng(77))
        assert np.array_equal(a.as_of_net16, b.as_of_net16)
        assert np.array_equal(a.base_uncleanliness, b.base_uncleanliness)


class TestASConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_as": 0},
            {"transit_fraction": -0.1},
            {"transit_fraction": 0.7, "mid_fraction": 0.5},
            {"prefix_tail": 0.0},
            {"tier_uncleanliness": (0.1, 0.2)},
            {"tier_uncleanliness": (0.0, 0.1, 0.2)},
            {"uncleanliness_spread": -1.0},
            {"provider_mix": 1.5},
            {"tier_cleanup_days": (4.0, -1.0, 30.0)},
            {"cleanup_spread": -0.5},
            {"reference_cleanup_days": 0.0},
            {"concentration": 0.0},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            ASConfig(**kwargs).validate()

    def test_default_valid(self):
        ASConfig().validate()
