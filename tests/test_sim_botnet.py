"""Unit tests for repro.sim.botnet."""

import numpy as np
import pytest

from repro.sim.botnet import BotnetConfig, BotnetSimulation
from repro.sim.timeline import Window


class TestConfig:
    def test_defaults_valid(self):
        BotnetConfig().validate()

    @pytest.mark.parametrize(
        "field,value",
        [
            ("horizon_days", 0),
            ("daily_compromises", 0.0),
            ("num_channels", 0),
            ("scanner_fraction", 1.5),
            ("spammer_fraction", -0.1),
        ],
    )
    def test_invalid_rejected(self, field, value):
        from dataclasses import replace

        with pytest.raises(ValueError):
            replace(BotnetConfig(), **{field: value}).validate()


class TestGeneration:
    def test_event_count_near_expectation(self, tiny_botnet):
        expected = (
            tiny_botnet.config.daily_compromises * tiny_botnet.config.horizon_days
        )
        assert 0.8 * expected < tiny_botnet.num_events < 1.2 * expected

    def test_intervals_within_horizon(self, tiny_botnet):
        assert (tiny_botnet.start_day >= 0).all()
        assert (tiny_botnet.end_day <= tiny_botnet.config.horizon_days - 1).all()
        assert (tiny_botnet.end_day >= tiny_botnet.start_day).all()

    def test_addresses_are_live_hosts(self, tiny_botnet):
        internet = tiny_botnet.internet
        for address in tiny_botnet.address[:100]:
            idx = internet.network_of(int(address))
            assert idx is not None
            assert int(address) in internet.host_addresses(idx)

    def test_channels_in_range(self, tiny_botnet):
        assert (tiny_botnet.channel >= 0).all()
        assert (tiny_botnet.channel < tiny_botnet.config.num_channels).all()

    def test_compromises_favour_unclean_networks(self, tiny_botnet):
        internet = tiny_botnet.internet
        bot_unclean = internet.uncleanliness[tiny_botnet.network_index]
        assert bot_unclean.mean() > 2 * internet.uncleanliness.mean()

    def test_durations_grow_with_uncleanliness(self, tiny_botnet):
        internet = tiny_botnet.internet
        u = internet.uncleanliness[tiny_botnet.network_index]
        durations = (tiny_botnet.end_day - tiny_botnet.start_day).astype(float)
        # Exclude horizon-truncated events to avoid censoring bias.
        free = tiny_botnet.end_day < tiny_botnet.config.horizon_days - 1
        dirty = free & (u > np.median(u))
        clean = free & (u <= np.median(u))
        assert durations[dirty].mean() > durations[clean].mean()

    def test_deterministic_given_seed(self, tiny_internet):
        config = BotnetConfig(daily_compromises=5.0)
        a = BotnetSimulation(tiny_internet, config, np.random.default_rng(1))
        b = BotnetSimulation(tiny_internet, config, np.random.default_rng(1))
        assert np.array_equal(a.address, b.address)
        assert np.array_equal(a.end_day, b.end_day)


class TestQueries:
    def test_active_addresses_unique_sorted(self, tiny_botnet):
        addrs = tiny_botnet.active_addresses(Window(100, 120))
        assert np.array_equal(addrs, np.unique(addrs))

    def test_active_window_monotone(self, tiny_botnet):
        narrow = tiny_botnet.active_addresses(Window(100, 105))
        wide = tiny_botnet.active_addresses(Window(90, 120))
        assert set(narrow.tolist()) <= set(wide.tolist())

    def test_channel_members_subset_of_active(self, tiny_botnet):
        window = Window(100, 120)
        members = tiny_botnet.channel_members(0, window)
        active = tiny_botnet.active_addresses(window)
        assert set(members.tolist()) <= set(active.tolist())

    def test_channel_out_of_range(self, tiny_botnet):
        with pytest.raises(ValueError):
            tiny_botnet.channel_members(99, Window(0, 1))

    def test_scanner_spammer_filters(self, tiny_botnet):
        window = Window(100, 160)
        scanners = tiny_botnet.active_addresses(window, scanners_only=True)
        spammers = tiny_botnet.active_addresses(window, spammers_only=True)
        active = tiny_botnet.active_addresses(window)
        assert set(scanners.tolist()) <= set(active.tolist())
        assert set(spammers.tolist()) <= set(active.tolist())

    def test_daily_active_count(self, tiny_botnet):
        count = tiny_botnet.daily_active_count(150)
        mask = tiny_botnet.active_mask(Window(150, 150))
        assert count == mask.sum()

    def test_event_indices_match_mask(self, tiny_botnet):
        window = Window(50, 60)
        idx = tiny_botnet.event_indices(window)
        assert tiny_botnet.active_mask(window)[idx].all()


class TestCleanup:
    def test_cleanup_truncates_reported_channel(self, tiny_botnet, rng):
        report_day = 150
        cleaned = tiny_botnet.with_cleanup(0, report_day, 3.0, rng)
        affected = (
            (tiny_botnet.channel == 0)
            & (tiny_botnet.start_day <= report_day)
            & (tiny_botnet.end_day > report_day)
        )
        if affected.any():
            assert (cleaned.end_day[affected] <= tiny_botnet.end_day[affected]).all()
            # Activity well after the report collapses for that channel.
            later = Window(report_day + 40, report_day + 60)
            before_cleanup = tiny_botnet.channel_members(0, later).size
            after_cleanup = cleaned.channel_members(0, later).size
            assert after_cleanup <= before_cleanup

    def test_other_channels_untouched(self, tiny_botnet, rng):
        cleaned = tiny_botnet.with_cleanup(0, 150, 3.0, rng)
        other = tiny_botnet.channel != 0
        assert np.array_equal(
            cleaned.end_day[other], tiny_botnet.end_day[other]
        )

    def test_original_not_mutated(self, tiny_botnet, rng):
        before = tiny_botnet.end_day.copy()
        tiny_botnet.with_cleanup(0, 150, 3.0, rng)
        assert np.array_equal(before, tiny_botnet.end_day)
