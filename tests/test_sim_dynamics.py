"""Unit tests for time-varying uncleanliness (repro.sim.dynamics)."""

import numpy as np
import pytest

from repro.sim.botnet import BotnetConfig, BotnetSimulation
from repro.sim.dynamics import DynamicsConfig, UncleanlinessProcess
from repro.sim.timeline import Window


@pytest.fixture(scope="module")
def process(tiny_internet):
    config = DynamicsConfig(epoch_days=30, horizon_days=334, stability=0.8)
    return UncleanlinessProcess(tiny_internet, config, np.random.default_rng(5))


class TestConfig:
    def test_defaults_valid(self):
        DynamicsConfig().validate()

    @pytest.mark.parametrize(
        "field,value",
        [
            ("epoch_days", 0),
            ("horizon_days", 0),
            ("stability", 1.5),
            ("innovation_sigma", -0.1),
        ],
    )
    def test_invalid_rejected(self, field, value):
        from dataclasses import replace

        with pytest.raises(ValueError):
            replace(DynamicsConfig(), **{field: value}).validate()

    def test_num_epochs_ceiling(self):
        assert DynamicsConfig(epoch_days=30, horizon_days=334).num_epochs == 12
        assert DynamicsConfig(epoch_days=30, horizon_days=360).num_epochs == 12
        assert DynamicsConfig(epoch_days=30, horizon_days=361).num_epochs == 13


class TestProcess:
    def test_field_shape_and_bounds(self, process, tiny_internet):
        assert process.uncleanliness.shape == (12, tiny_internet.num_networks)
        assert (process.uncleanliness >= 0).all()
        assert (process.uncleanliness <= 1).all()

    def test_epoch_of(self, process):
        assert process.epoch_of(0) == 0
        assert process.epoch_of(29) == 0
        assert process.epoch_of(30) == 1
        assert process.epoch_of(333) == 11

    def test_epoch_of_out_of_range(self, process):
        with pytest.raises(ValueError):
            process.epoch_of(334)
        with pytest.raises(ValueError):
            process.epoch_of(-1)

    def test_at_day_matches_epoch(self, process):
        assert np.array_equal(process.at_day(45), process.at_epoch(1))

    def test_full_stability_is_static(self, tiny_internet):
        config = DynamicsConfig(stability=1.0)
        proc = UncleanlinessProcess(tiny_internet, config, np.random.default_rng(1))
        for epoch in range(1, config.num_epochs):
            assert np.allclose(proc.at_epoch(epoch), proc.at_epoch(0))
        assert proc.field_correlation(0, 300) == pytest.approx(1.0)

    def test_zero_stability_decorrelates(self, tiny_internet):
        stable = UncleanlinessProcess(
            tiny_internet, DynamicsConfig(stability=0.95),
            np.random.default_rng(2),
        )
        unstable = UncleanlinessProcess(
            tiny_internet, DynamicsConfig(stability=0.0),
            np.random.default_rng(2),
        )
        gap = 150
        assert unstable.field_correlation(0, gap) < stable.field_correlation(0, gap)

    def test_compromise_weights_follow_field(self, process, tiny_internet):
        weights = process.compromise_weights(day=45)
        manual = tiny_internet.population * np.power(process.at_day(45), 1.7)
        assert np.allclose(weights, manual)

    def test_deterministic(self, tiny_internet):
        config = DynamicsConfig(stability=0.5)
        a = UncleanlinessProcess(tiny_internet, config, np.random.default_rng(3))
        b = UncleanlinessProcess(tiny_internet, config, np.random.default_rng(3))
        assert np.array_equal(a.uncleanliness, b.uncleanliness)


class TestBotnetWithDynamics:
    def test_short_dynamics_horizon_rejected(self, tiny_internet):
        proc = UncleanlinessProcess(
            tiny_internet, DynamicsConfig(horizon_days=100),
            np.random.default_rng(1),
        )
        with pytest.raises(ValueError):
            BotnetSimulation(
                tiny_internet,
                BotnetConfig(daily_compromises=5.0, horizon_days=334),
                np.random.default_rng(2),
                dynamics=proc,
            )

    def test_compromises_track_the_current_field(self, tiny_internet):
        """With an unstable field, compromises in epoch e must
        concentrate where the field says dirt is in epoch e."""
        proc = UncleanlinessProcess(
            tiny_internet,
            DynamicsConfig(stability=0.0, innovation_sigma=1.0),
            np.random.default_rng(11),
        )
        botnet = BotnetSimulation(
            tiny_internet,
            BotnetConfig(daily_compromises=40.0),
            np.random.default_rng(12),
            dynamics=proc,
        )
        for epoch in (0, 5, 11):
            field = proc.at_epoch(epoch)
            mask = botnet.start_day // 30 == epoch
            if mask.sum() < 50:
                continue
            sampled = field[botnet.network_index[mask]]
            assert sampled.mean() > 1.5 * field.mean()

    def test_stable_dynamics_behaves_like_static(self, tiny_internet):
        """stability=1 reproduces the static generator's distribution
        (not bit-identical — RNG order differs — but statistically)."""
        proc = UncleanlinessProcess(
            tiny_internet, DynamicsConfig(stability=1.0), np.random.default_rng(13)
        )
        dynamic = BotnetSimulation(
            tiny_internet,
            BotnetConfig(daily_compromises=40.0),
            np.random.default_rng(14),
            dynamics=proc,
        )
        static = BotnetSimulation(
            tiny_internet,
            BotnetConfig(daily_compromises=40.0),
            np.random.default_rng(14),
        )
        u = tiny_internet.uncleanliness
        dyn_mean = u[dynamic.network_index].mean()
        sta_mean = u[static.network_index].mean()
        assert abs(dyn_mean - sta_mean) < 0.1 * max(sta_mean, 1e-9)

    def test_cleanup_preserves_dynamics_reference(self, tiny_internet, rng):
        proc = UncleanlinessProcess(
            tiny_internet, DynamicsConfig(stability=0.5), np.random.default_rng(15)
        )
        botnet = BotnetSimulation(
            tiny_internet,
            BotnetConfig(daily_compromises=10.0),
            np.random.default_rng(16),
            dynamics=proc,
        )
        cleaned = botnet.with_cleanup(0, 150, 3.0, rng)
        assert cleaned.dynamics is proc
