"""Unit tests for repro.sim.internet."""

import numpy as np
import pytest

from repro.ipspace.iana import allocated_octets
from repro.ipspace.reserved import reserved_mask
from repro.sim.internet import InternetConfig, SyntheticInternet


class TestConfig:
    def test_defaults_valid(self):
        InternetConfig().validate()

    @pytest.mark.parametrize(
        "field,value",
        [
            ("num_slash16", 0),
            ("mean_occupancy", 0.0),
            ("mean_occupancy", 1.5),
            ("hosting_fraction", -0.1),
            ("mean_hosts", 0.5),
            ("observed_octet", 300),
        ],
    )
    def test_invalid_rejected(self, field, value):
        from dataclasses import replace

        with pytest.raises(ValueError):
            replace(InternetConfig(), **{field: value}).validate()


class TestStructure:
    def test_networks_are_slash24_aligned(self, tiny_internet):
        assert (tiny_internet.net24 & 0xFF == 0).all()

    def test_networks_sorted_unique(self, tiny_internet):
        nets = tiny_internet.net24
        assert (np.diff(nets.astype(np.int64)) > 0).all()

    def test_networks_in_allocated_space(self, tiny_internet):
        allocated = allocated_octets()
        octets = set((tiny_internet.net24 >> 24).tolist())
        assert octets <= allocated

    def test_observed_octet_excluded(self, tiny_internet):
        observed = tiny_internet.config.observed_octet
        assert observed not in set((tiny_internet.net24 >> 24).tolist())

    def test_no_reserved_networks(self, tiny_internet):
        assert not reserved_mask(tiny_internet.net24).any()

    def test_uncleanliness_in_unit_interval(self, tiny_internet):
        assert (tiny_internet.uncleanliness >= 0).all()
        assert (tiny_internet.uncleanliness <= 1).all()

    def test_uncleanliness_mostly_clean(self, tiny_internet):
        # Heavy-tailed: the median network is much cleaner than the worst.
        u = tiny_internet.uncleanliness
        assert np.median(u) < 0.25
        assert u.max() > 0.5

    def test_populations_in_host_range(self, tiny_internet):
        assert (tiny_internet.population >= 1).all()
        assert (tiny_internet.population <= 254).all()

    def test_uncleanliness_clusters_within_slash16(self):
        # Variance of per-/16 mean uncleanliness should exceed what
        # shuffling the /24s would produce — i.e. dirt is not i.i.d.
        internet = SyntheticInternet(
            InternetConfig(num_slash16=120), np.random.default_rng(5)
        )
        idx = internet._net16_index
        u = internet.uncleanliness
        group_means = np.asarray(
            [u[idx == g].mean() for g in np.unique(idx) if (idx == g).sum() >= 4]
        )
        rng = np.random.default_rng(6)
        shuffled = u.copy()
        rng.shuffle(shuffled)
        shuffled_means = np.asarray(
            [shuffled[idx == g].mean() for g in np.unique(idx) if (idx == g).sum() >= 4]
        )
        assert group_means.var() > 2 * shuffled_means.var()

    def test_hosting_blocks_cleaner(self):
        internet = SyntheticInternet(
            InternetConfig(num_slash16=400, hosting_fraction=0.15),
            np.random.default_rng(7),
        )
        if internet.hosting.any() and (~internet.hosting).any():
            assert (
                internet.uncleanliness[internet.hosting].mean()
                < internet.uncleanliness[~internet.hosting].mean()
            )

    def test_deterministic_given_seed(self):
        config = InternetConfig(num_slash16=30)
        a = SyntheticInternet(config, np.random.default_rng(42))
        b = SyntheticInternet(config, np.random.default_rng(42))
        assert np.array_equal(a.net24, b.net24)
        assert np.array_equal(a.uncleanliness, b.uncleanliness)


class TestLookups:
    def test_network_of_hit(self, tiny_internet):
        address = int(tiny_internet.net24[3]) + 7
        assert tiny_internet.network_of(address) == 3

    def test_network_of_miss(self, tiny_internet):
        # The observed network is never in the external population.
        inside = tiny_internet.observed_network.first_address + 1
        assert tiny_internet.network_of(inside) is None

    def test_is_observed(self, tiny_internet):
        inside = tiny_internet.observed_network.first_address + 99
        assert tiny_internet.is_observed(inside)
        assert not tiny_internet.is_observed(int(tiny_internet.net24[0]) + 1)

    def test_host_addresses(self, tiny_internet):
        hosts = tiny_internet.host_addresses(0)
        assert hosts.size == int(tiny_internet.population[0])
        assert (hosts & 0xFFFFFF00 == tiny_internet.net24[0]).all()
        assert (hosts & 0xFF >= 1).all()
        assert np.unique(hosts).size == hosts.size

    def test_host_offsets_spread_and_injective(self):
        from repro.sim.internet import SyntheticInternet

        offsets = SyntheticInternet.host_offsets(np.arange(254))
        assert np.unique(offsets).size == 254
        assert offsets.min() == 1 and offsets.max() == 254
        # A small population is NOT packed into one /28.
        few = SyntheticInternet.host_offsets(np.arange(16))
        assert np.unique(few // 16).size > 8


class TestSampling:
    def test_sample_hosts_live(self, tiny_internet, rng):
        sample = tiny_internet.sample_hosts(500, rng)
        for address in sample[:50]:
            idx = tiny_internet.network_of(int(address))
            assert idx is not None
            assert int(address) in tiny_internet.host_addresses(idx)

    def test_sample_unique_hosts(self, tiny_internet, rng):
        count = min(300, tiny_internet.total_population // 2)
        sample = tiny_internet.sample_unique_hosts(count, rng)
        assert sample.size == count
        assert np.unique(sample).size == count

    def test_sample_unique_too_many(self, tiny_internet, rng):
        with pytest.raises(ValueError):
            tiny_internet.sample_unique_hosts(
                tiny_internet.total_population + 1, rng
            )

    def test_sample_invalid_count(self, tiny_internet, rng):
        with pytest.raises(ValueError):
            tiny_internet.sample_hosts(0, rng)

    def test_compromise_weights_favour_unclean(self, tiny_internet, rng):
        weights = tiny_internet.compromise_weights(affinity=2.0)
        sample = tiny_internet.sample_hosts(2000, rng, weights)
        sampled_u = []
        for address in sample:
            idx = tiny_internet.network_of(int(address))
            sampled_u.append(tiny_internet.uncleanliness[idx])
        assert np.mean(sampled_u) > 2 * tiny_internet.uncleanliness.mean()

    def test_hosting_weights_favour_hosting(self):
        internet = SyntheticInternet(
            InternetConfig(num_slash16=400, hosting_fraction=0.1),
            np.random.default_rng(8),
        )
        weights = internet.hosting_weights()
        hosting_share = weights[internet.hosting].sum() / weights.sum()
        raw_share = internet.hosting.mean()
        assert hosting_share > 3 * raw_share

    def test_zero_weights_rejected(self, tiny_internet, rng):
        with pytest.raises(ValueError):
            tiny_internet.sample_hosts(
                10, rng, np.zeros(tiny_internet.num_networks)
            )
