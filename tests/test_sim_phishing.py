"""Unit tests for repro.sim.phishing."""

import numpy as np
import pytest

from repro.sim.phishing import PhishingConfig, PhishingSimulation
from repro.sim.timeline import Window


class TestConfig:
    def test_defaults_valid(self):
        PhishingConfig().validate()

    @pytest.mark.parametrize(
        "field,value",
        [("horizon_days", 0), ("daily_sites", 0.0), ("mean_lifetime_days", 0.0)],
    )
    def test_invalid_rejected(self, field, value):
        from dataclasses import replace

        with pytest.raises(ValueError):
            replace(PhishingConfig(), **{field: value}).validate()


class TestGeneration:
    def test_site_count_near_expectation(self, tiny_phishing):
        expected = (
            tiny_phishing.config.daily_sites * tiny_phishing.config.horizon_days
        )
        assert 0.8 * expected < tiny_phishing.num_sites < 1.2 * expected

    def test_intervals_within_horizon(self, tiny_phishing):
        assert (tiny_phishing.start_day >= 0).all()
        assert (tiny_phishing.end_day <= tiny_phishing.config.horizon_days - 1).all()
        assert (tiny_phishing.end_day >= tiny_phishing.start_day).all()

    def test_sites_prefer_hosting_space(self):
        from repro.sim.internet import InternetConfig, SyntheticInternet

        internet = SyntheticInternet(
            InternetConfig(num_slash16=400, hosting_fraction=0.08),
            np.random.default_rng(21),
        )
        phishing = PhishingSimulation(
            internet, PhishingConfig(daily_sites=6.0), np.random.default_rng(22)
        )
        hosted = internet.hosting[phishing.network_index].mean()
        baseline = internet.hosting.mean()
        assert hosted > 4 * baseline

    def test_phishing_decoupled_from_uncleanliness(self, tiny_phishing, tiny_botnet):
        # Phishing sites should NOT concentrate in unclean space the way
        # bots do — the §5.2 multidimensionality result.
        internet = tiny_phishing.internet
        phish_u = internet.uncleanliness[tiny_phishing.network_index].mean()
        bot_u = internet.uncleanliness[tiny_botnet.network_index].mean()
        assert phish_u < 0.6 * bot_u

    def test_deterministic_given_seed(self, tiny_internet):
        config = PhishingConfig(daily_sites=2.0)
        a = PhishingSimulation(tiny_internet, config, np.random.default_rng(1))
        b = PhishingSimulation(tiny_internet, config, np.random.default_rng(1))
        assert np.array_equal(a.address, b.address)


class TestQueries:
    def test_active_addresses_unique(self, tiny_phishing):
        addrs = tiny_phishing.active_addresses(Window(100, 160))
        assert np.array_equal(addrs, np.unique(addrs))

    def test_window_monotone(self, tiny_phishing):
        narrow = tiny_phishing.active_addresses(Window(120, 125))
        wide = tiny_phishing.active_addresses(Window(100, 160))
        assert set(narrow.tolist()) <= set(wide.tolist())

    def test_sites_persist_across_weeks(self, tiny_phishing):
        # Mean lifetime ~25 days: adjacent fortnights share many sites.
        first = set(tiny_phishing.active_addresses(Window(100, 113)).tolist())
        second = set(tiny_phishing.active_addresses(Window(114, 127)).tolist())
        if first and second:
            overlap = len(first & second) / min(len(first), len(second))
            assert overlap > 0.3
