"""Unit tests for repro.sim.timeline."""

import datetime

import pytest

from repro.sim.timeline import (
    DAY_SECONDS,
    EPOCH,
    PAPER_WINDOWS,
    Window,
    date_to_day,
    day_to_date,
)


class TestDayConversion:
    def test_epoch_is_day_zero(self):
        assert date_to_day(EPOCH) == 0
        assert day_to_date(0) == EPOCH

    def test_round_trip(self):
        for day in (0, 1, 100, 333):
            assert date_to_day(day_to_date(day)) == day

    def test_known_date(self):
        assert day_to_date(date_to_day(datetime.date(2006, 10, 1))) == datetime.date(
            2006, 10, 1
        )


class TestWindow:
    def test_from_dates(self):
        w = Window.from_dates(datetime.date(2006, 10, 1), datetime.date(2006, 10, 14))
        assert w.num_days == 14

    def test_single_day(self):
        w = Window(5, 5)
        assert w.num_days == 1
        assert w.contains_day(5)
        assert not w.contains_day(6)

    def test_reversed_rejected(self):
        with pytest.raises(ValueError):
            Window(10, 9)

    def test_seconds(self):
        w = Window(2, 3)
        assert w.start_second == 2 * DAY_SECONDS
        assert w.end_second == 4 * DAY_SECONDS

    def test_days_iterator(self):
        assert list(Window(3, 5).days()) == [3, 4, 5]

    def test_overlaps(self):
        assert Window(0, 10).overlaps(Window(10, 20))
        assert Window(0, 10).overlaps(Window(5, 7))
        assert not Window(0, 10).overlaps(Window(11, 20))

    def test_dates_round_trip(self):
        w = Window.from_dates(datetime.date(2006, 5, 10), datetime.date(2006, 5, 10))
        assert w.dates() == (datetime.date(2006, 5, 10), datetime.date(2006, 5, 10))

    def test_str(self):
        w = Window.from_dates(datetime.date(2006, 10, 1), datetime.date(2006, 10, 14))
        assert str(w) == "2006-10-01..2006-10-14"

    def test_ordering(self):
        assert Window(0, 5) < Window(1, 2)


class TestPaperWindows:
    def test_october(self):
        assert PAPER_WINDOWS.OCTOBER.dates() == (
            datetime.date(2006, 10, 1),
            datetime.date(2006, 10, 14),
        )
        assert PAPER_WINDOWS.OCTOBER.num_days == 14

    def test_control_week(self):
        assert PAPER_WINDOWS.CONTROL.dates() == (
            datetime.date(2006, 9, 25),
            datetime.date(2006, 10, 2),
        )

    def test_bot_test_five_months_before_october(self):
        gap = PAPER_WINDOWS.OCTOBER.start_day - PAPER_WINDOWS.BOT_TEST.start_day
        assert 140 <= gap <= 160  # "a five month gap in time"

    def test_phish_window_is_six_months(self):
        assert 175 <= PAPER_WINDOWS.PHISH.num_days <= 190

    def test_figure1_spans_january_to_april(self):
        start, end = PAPER_WINDOWS.FIGURE1.dates()
        assert start.month == 1
        assert end.month == 4

    def test_figure1_bot_report_inside_observation(self):
        assert PAPER_WINDOWS.FIGURE1.overlaps(PAPER_WINDOWS.FIGURE1_BOT)
