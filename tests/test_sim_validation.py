"""Tests for the statistical validation of the simulators."""

import numpy as np
import pytest

from repro.sim.botnet import BotnetConfig, BotnetSimulation
from repro.sim.validation import (
    check_channels_uniform,
    check_durations_exponential,
    check_placement_tracks_uncleanliness,
    check_start_days_uniform,
    validate_botnet,
)


@pytest.fixture(scope="module")
def big_botnet(tiny_internet):
    """A botnet with enough events for the tests to have power."""
    return BotnetSimulation(
        tiny_internet,
        BotnetConfig(daily_compromises=60.0),
        np.random.default_rng(41),
    )


class TestChecks:
    def test_start_days_uniform(self, big_botnet):
        result = check_start_days_uniform(big_botnet)
        assert result.passed, result.as_dict()

    def test_durations_exponential(self, big_botnet):
        result = check_durations_exponential(big_botnet)
        assert result.passed, result.as_dict()

    def test_channels_uniform(self, big_botnet):
        result = check_channels_uniform(big_botnet)
        assert result.passed, result.as_dict()

    def test_placement_tracks_uncleanliness(self, big_botnet):
        result = check_placement_tracks_uncleanliness(big_botnet)
        assert result.passed, result.as_dict()
        assert result.statistic > 0.3

    def test_validate_botnet_runs_all(self, big_botnet):
        results = validate_botnet(big_botnet)
        assert len(results) == 4
        assert all(r.passed for r in results), [r.as_dict() for r in results]

    def test_as_dict_shape(self, big_botnet):
        result = check_channels_uniform(big_botnet)
        assert set(result.as_dict()) == {
            "check", "statistic", "p_value", "passed", "detail",
        }


class TestChecksHavePower:
    """The checks must actually fail on broken generators."""

    def test_biased_channels_detected(self, big_botnet, tiny_internet):
        broken = object.__new__(BotnetSimulation)
        broken.__dict__.update(big_botnet.__dict__)
        channel = big_botnet.channel.copy()
        channel[: channel.size // 2] = 0  # half the bots pile into channel 0
        broken.channel = channel
        assert not check_channels_uniform(broken).passed

    def test_nonuniform_starts_detected(self, big_botnet):
        broken = object.__new__(BotnetSimulation)
        broken.__dict__.update(big_botnet.__dict__)
        start = big_botnet.start_day.copy()
        start[:] = np.minimum(start, 100)  # everything early
        broken.start_day = start
        assert not check_start_days_uniform(broken).passed

    def test_shuffled_placement_detected(self, big_botnet, tiny_internet):
        broken = object.__new__(BotnetSimulation)
        broken.__dict__.update(big_botnet.__dict__)
        rng = np.random.default_rng(5)
        # Placement uniform over networks, ignoring uncleanliness.
        broken.network_index = rng.integers(
            0, tiny_internet.num_networks, size=big_botnet.num_events
        )
        assert not check_placement_tracks_uncleanliness(broken).passed

    def test_wrong_duration_shape_detected(self, big_botnet):
        broken = object.__new__(BotnetSimulation)
        broken.__dict__.update(big_botnet.__dict__)
        rng = np.random.default_rng(6)
        # Uniform durations instead of exponential.
        span = rng.integers(2, 60, size=big_botnet.num_events)
        broken.end_day = np.minimum(
            big_botnet.start_day + span,
            big_botnet.config.horizon_days - 1,
        )
        assert not check_durations_exponential(broken).passed
