"""Chaos tests: ``UncleanlinessService.resume`` under storage faults.

The durability contract: whatever storage faults fire while a service
ingests and checkpoints — flaky reads/writes, commit-window delays,
corrupted payloads — restarting over the same cache directory and
replaying the remaining days yields scores **bit-identical** to a
fault-free straight-through fold, or the failure surfaces as a typed
:class:`StoreError` / ``OSError``.  Silent divergence is the one
forbidden outcome.
"""

import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine import faults
from repro.engine.store import ArtifactStore, StoreError
from repro.sim.timeline import PAPER_WINDOWS
from repro.stream import StreamConfig, UncleanlinessService, day_batches

#: Errors a faulted fold is allowed to surface.  ``OSError`` covers the
#: store's transient-retry path exhausting its budget; everything else
#: must arrive as a typed ``StoreError``.
TYPED = (StoreError, OSError)

WINDOW = PAPER_WINDOWS.OCTOBER


@pytest.fixture(autouse=True)
def quiet_faults():
    faults.reset()
    with faults.injected(faults.FaultPlan([])):
        yield
    faults.reset()


@pytest.fixture(scope="module")
def baseline_scores(tiny_traffic):
    """Fault-free straight-through fold of the whole window."""
    faults.reset()
    with faults.injected(faults.FaultPlan([])):
        service = UncleanlinessService(
            StreamConfig(window=WINDOW), source="baseline", store=ArtifactStore()
        )
        for batch in day_batches(tiny_traffic, from_day=service.cursor + 1):
            service.ingest(batch)
    return service.scores().scores.copy()


def _fold(service, traffic, stop_day=None):
    """Ingest days ``cursor+1 ..`` (exclusive of ``stop_day``)."""
    for batch in day_batches(traffic, from_day=service.cursor + 1):
        if stop_day is not None and batch.day >= stop_day:
            break
        service.ingest(batch)


def _chaos_round(traffic, plan, split_day, cache_dir):
    """Phase 1: fold under ``plan`` up to ``split_day`` (faults allowed
    to abort the fold).  Phase 2: fault-free restart over the same
    directory, resume, replay the rest.  Returns final scores."""
    config = StreamConfig(window=WINDOW)
    store = ArtifactStore(max_memory_items=4, disk_dir=Path(cache_dir))
    service = UncleanlinessService(config, source="chaos", store=store)
    try:
        with faults.injected(plan):
            _fold(service, traffic, stop_day=split_day)
    except TYPED:
        pass  # a typed mid-fold failure is fine; resume must recover

    fresh = ArtifactStore(max_memory_items=4, disk_dir=Path(cache_dir))
    resumed = UncleanlinessService.resume(config, source="chaos", store=fresh)
    _fold(resumed, traffic)
    return resumed.scores().scores


class TestDeterministicProfiles:
    def test_io_flaky_profile_recovers_bit_identical(
        self, tiny_traffic, baseline_scores
    ):
        plan = faults.FaultPlan.from_spec("io-flaky")
        with tempfile.TemporaryDirectory() as cache_dir:
            scores = _chaos_round(
                tiny_traffic, plan, WINDOW.start_day + 4, cache_dir
            )
        np.testing.assert_array_equal(scores, baseline_scores)

    def test_corrupt_profile_recovers_bit_identical(
        self, tiny_traffic, baseline_scores
    ):
        # Payload corruption lands *after* the dump: the bad checkpoint
        # is only discovered at resume time, which must fall back to an
        # earlier good day (or cold start) and replay forward.
        plan = faults.FaultPlan.from_spec("corrupt")
        with tempfile.TemporaryDirectory() as cache_dir:
            scores = _chaos_round(
                tiny_traffic, plan, WINDOW.start_day + 6, cache_dir
            )
        np.testing.assert_array_equal(scores, baseline_scores)

    def test_resume_under_flaky_reads_is_identical_or_typed(
        self, tiny_traffic, baseline_scores
    ):
        # Faults active during the *resume* as well: the walk-back over
        # checkpoints may hit injected read errors.  Either it still
        # reconstructs the exact scores or it raises typed.
        config = StreamConfig(window=WINDOW)
        with tempfile.TemporaryDirectory() as cache_dir:
            store = ArtifactStore(max_memory_items=4, disk_dir=Path(cache_dir))
            service = UncleanlinessService(config, source="chaos", store=store)
            _fold(service, tiny_traffic, stop_day=WINDOW.start_day + 5)

            fresh = ArtifactStore(max_memory_items=4, disk_dir=Path(cache_dir))
            plan = faults.FaultPlan.from_spec("store.read:oserror:every=2")
            try:
                with faults.injected(plan):
                    resumed = UncleanlinessService.resume(
                        config, source="chaos", store=fresh
                    )
                    _fold(resumed, tiny_traffic)
            except TYPED:
                return
            np.testing.assert_array_equal(
                resumed.scores().scores, baseline_scores
            )


STORE_RULE = st.builds(
    lambda site, every, times, after: faults.FaultRule(
        site=site,
        kind=faults._DEFAULT_KIND[site],
        every=every,
        times=times,
        after=after,
        delay=0.001,
    ),
    site=st.sampled_from(
        ["store.read", "store.write", "store.commit", "store.corrupt"]
    ),
    every=st.integers(min_value=1, max_value=5),
    times=st.one_of(st.none(), st.integers(min_value=1, max_value=4)),
    after=st.integers(min_value=0, max_value=5),
)


class TestFaultScheduleProperty:
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        rules=st.lists(STORE_RULE, min_size=1, max_size=3),
        split=st.integers(min_value=1, max_value=WINDOW.num_days - 1),
    )
    def test_any_schedule_resumes_bit_identical_or_typed(
        self, rules, split, tiny_traffic, baseline_scores
    ):
        plan = faults.FaultPlan(rules)
        with tempfile.TemporaryDirectory() as cache_dir:
            try:
                scores = _chaos_round(
                    tiny_traffic, plan, WINDOW.start_day + split, cache_dir
                )
            except TYPED:
                return  # typed, never silent
        np.testing.assert_array_equal(scores, baseline_scores)
