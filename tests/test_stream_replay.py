"""Replay equivalence: the streaming fold vs the batch pipeline.

The invariant the whole streaming layer rests on: folding a window's
day-batches through :class:`IncrementalState` — in any feed-delivery
schedule — produces *bit-identical* reports, noisy-OR scores, blocklists
and per-prefix density counts to computing everything whole-window.

Two layers of evidence:

* a hypothesis property over randomly generated traffic, windows, seeds
  and feed-delivery schedules at unit-test scale;
* the full October small scenario, compared report-by-report and
  float-by-float against the batch stage pipeline.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import cidr as rcidr
from repro.core import folds
from repro.core.report import DataClass, Report, ReportType
from repro.detect.scan import ScanDetector, ScanDetectorConfig
from repro.detect.spam import SpamAggregates, SpamDetector, SpamDetectorConfig
from repro.flows.generator import TrafficConfig, TrafficGenerator
from repro.ipspace.cidr import mask_array
from repro.sim.timeline import PAPER_WINDOWS, Window
from repro.stream import DayBatch, IncrementalState, StreamConfig, day_batches
from repro.stream.checkpoint import StreamStateCodec

STREAM_FEED_TAGS = (
    "bot", "phish", "phish-present", "bot-test", "phish-test", "control",
)


def _provided_report(tag: str, addresses: np.ndarray, window: Window) -> Report:
    data_class = {"bot": DataClass.BOTS, "phish": DataClass.PHISHING}[tag]
    return Report(
        tag=tag,
        addresses=addresses,
        report_type=ReportType.PROVIDED,
        data_class=data_class,
        period=window.dates(),
    ).without_reserved()


def _batch_reports(flows, window, provided, scan_config, spam_config):
    """The whole-window reference the stream must reproduce."""
    reports = dict(provided)
    reports["scan"] = folds.observed_report(
        "scan", ScanDetector(scan_config).detect(flows), window
    )
    reports["spam"] = folds.observed_report(
        "spam", SpamDetector(spam_config).detect(flows), window
    )
    reports["unclean"] = folds.unclean_union(reports, window)
    return reports


def _assert_state_matches_batch(state, reports, stream_config):
    for tag, expected in reports.items():
        assert state.report(tag) == expected, f"report mismatch: {tag}"
    batch = folds.batch_scores(
        reports,
        prefix_len=stream_config.prefix_len,
        weights=dict(stream_config.weights),
    )
    scores = state.scores()
    assert np.array_equal(scores.blocks, batch.blocks)
    for cls in batch.class_counts:
        assert np.array_equal(scores.class_counts[cls], batch.class_counts[cls])
    assert np.array_equal(scores.scores, batch.scores)  # bit-identical floats
    assert np.array_equal(
        state.blocklist(),
        folds.blocklist_networks(batch, stream_config.threshold),
    )
    unclean = reports["unclean"].addresses
    for n, count in state.block_counts().items():
        assert count == np.unique(mask_array(unclean, n)).size, n


class TestHypothesisReplay:
    """Random windows, seeds, traffic and delivery schedules."""

    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        start_day=st.integers(min_value=0, max_value=300),
        num_days=st.integers(min_value=1, max_value=4),
        scatter_feeds=st.booleans(),
    )
    @settings(max_examples=12, deadline=None)
    def test_fold_equals_batch(self, seed, start_day, num_days, scatter_feeds):
        from repro.sim.internet import InternetConfig, SyntheticInternet
        from repro.sim.botnet import BotnetConfig, BotnetSimulation

        rng = np.random.default_rng(seed)
        window = Window(start_day, start_day + num_days - 1)
        internet = SyntheticInternet(
            InternetConfig(num_slash16=12, mean_hosts=12.0),
            np.random.default_rng(seed + 1),
        )
        botnet = BotnetSimulation(
            internet,
            BotnetConfig(daily_compromises=9.0, horizon_days=start_day + num_days),
            np.random.default_rng(seed + 2),
        )
        traffic = TrafficGenerator(
            internet,
            botnet,
            TrafficConfig(benign_clients_per_day=12, suspicious_hosts=40),
        ).generate(window, np.random.default_rng(seed + 3))

        # Loosened spam thresholds so flag/unflag churn actually happens.
        scan_config = ScanDetectorConfig(min_targets=5)
        spam_config = SpamDetectorConfig(min_messages=3, min_daily_rate=1.5,
                                         max_size_cv=0.9)
        provided = {
            tag: _provided_report(
                tag,
                rng.integers(0, 2**32, size=rng.integers(1, 30),
                             dtype=np.uint32),
                window,
            )
            for tag in ("bot", "phish")
        }
        stream_config = StreamConfig(
            window=window,
            scan_detector=scan_config,
            spam_detector=spam_config,
        )

        state = IncrementalState(stream_config)
        days = list(window.days())
        # Each tag's addresses arrive split across random days — the
        # delivery schedule must not change the fold's outcome.
        assignment = {
            tag: rng.integers(0, len(days), size=report.addresses.size)
            for tag, report in provided.items()
        }
        for index, (day, flows) in enumerate(
            folds.day_slices(traffic.flows, window)
        ):
            if scatter_feeds:
                batch_provided = {
                    tag: Report(
                        tag=tag,
                        addresses=report.addresses[assignment[tag] == index],
                        report_type=report.report_type,
                        data_class=report.data_class,
                        period=report.period,
                    )
                    for tag, report in provided.items()
                }
            else:
                batch_provided = provided if index == 0 else {}
            state.ingest(DayBatch(day=day, flows=flows,
                                  provided=batch_provided))

        reports = _batch_reports(
            traffic.flows, window, provided, scan_config, spam_config
        )
        _assert_state_matches_batch(state, reports, stream_config)

        # Checkpoint codec round-trip preserves the fold exactly.
        codec = StreamStateCodec(stream_config)
        arrays, meta = codec.to_payload(state)
        restored = codec.from_payload(
            {key: np.array(value) for key, value in arrays.items()}, meta
        )
        _assert_state_matches_batch(restored, reports, stream_config)
        assert restored.cursor == state.cursor
        assert restored.days_ingested == state.days_ingested

    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=8, deadline=None)
    def test_spam_aggregates_merge_is_exact(self, seed):
        """Day-partial spam aggregates merge to whole-window bit-identity."""
        window = Window(10, 13)
        from repro.sim.internet import InternetConfig, SyntheticInternet
        from repro.sim.botnet import BotnetConfig, BotnetSimulation

        internet = SyntheticInternet(
            InternetConfig(num_slash16=10, mean_hosts=10.0),
            np.random.default_rng(seed),
        )
        botnet = BotnetSimulation(
            internet, BotnetConfig(daily_compromises=8.0, horizon_days=14),
            np.random.default_rng(seed + 1),
        )
        traffic = TrafficGenerator(
            internet, botnet,
            TrafficConfig(benign_clients_per_day=10, suspicious_hosts=30),
        ).generate(window, np.random.default_rng(seed + 2))

        whole = SpamAggregates.from_flows(traffic.flows)
        folded = SpamAggregates.empty()
        for _, flows in folds.day_slices(traffic.flows, window):
            folded = folded.merge(SpamAggregates.from_flows(flows))
        assert np.array_equal(folded.sources, whole.sources)
        assert np.array_equal(folded.messages, whole.messages)
        assert np.array_equal(folded.active_days, whole.active_days)
        assert np.array_equal(folded.size_sums, whole.size_sums)
        assert np.array_equal(folded.size_sq_sums, whole.size_sq_sums)
        config = SpamDetectorConfig(min_messages=3, min_daily_rate=1.5)
        assert np.array_equal(folded.flagged(config), whole.flagged(config))


class TestSmallScenarioReplay:
    """The full October scenario, stream vs batch, field by field."""

    @pytest.fixture(scope="class")
    def replayed(self, small_scenario):
        config = StreamConfig(
            window=PAPER_WINDOWS.OCTOBER,
            scan_detector=small_scenario.config.scan_detector,
            spam_detector=small_scenario.config.spam_detector,
        )
        state = IncrementalState(config)
        provided = {
            tag: small_scenario.report(tag) for tag in STREAM_FEED_TAGS
        }
        for batch in day_batches(small_scenario.october_traffic, provided):
            state.ingest(batch)
        return state, config

    def test_every_report_identical(self, replayed, small_scenario):
        state, _ = replayed
        for tag, expected in small_scenario.reports.items():
            assert state.report(tag) == expected, tag

    def test_scores_blocklist_densities_identical(self, replayed,
                                                  small_scenario):
        state, config = replayed
        _assert_state_matches_batch(
            state, small_scenario.reports, config
        )

    def test_density_counts_match_block_count(self, replayed, small_scenario):
        state, _ = replayed
        unclean = small_scenario.report("unclean")
        for n, count in state.block_counts().items():
            assert count == rcidr.cidr_set(unclean, n).size

    def test_cursor_and_volume(self, replayed, small_scenario):
        state, _ = replayed
        assert state.cursor == PAPER_WINDOWS.OCTOBER.end_day
        assert state.days_ingested == PAPER_WINDOWS.OCTOBER.num_days
        assert state.flows_ingested == len(
            small_scenario.october_traffic.flows
        )


class TestIngestContract:
    def test_rejects_out_of_order_days(self, tiny_traffic):
        config = StreamConfig(window=PAPER_WINDOWS.OCTOBER)
        state = IncrementalState(config)
        batches = list(day_batches(tiny_traffic))
        state.ingest(batches[0])
        with pytest.raises(ValueError, match="already ingested"):
            state.ingest(batches[0])

    def test_rejects_days_outside_window(self):
        config = StreamConfig(window=Window(10, 12))
        state = IncrementalState(config)
        with pytest.raises(ValueError, match="outside window"):
            state.ingest(DayBatch(day=42))

    def test_rejects_computed_tags_as_feeds(self):
        config = StreamConfig(window=Window(10, 12))
        state = IncrementalState(config)
        spoof = folds.observed_report(
            "scan", np.asarray([1], dtype=np.uint32), config.window
        )
        with pytest.raises(ValueError, match="computed by the fold"):
            state.ingest(DayBatch(day=10, provided={"scan": spoof}))

    def test_skipping_days_is_allowed(self, tiny_traffic):
        """Gaps are fine: a quiet day is an empty batch, and skipping it
        entirely equals ingesting it empty."""
        config = StreamConfig(window=PAPER_WINDOWS.OCTOBER)
        batches = list(day_batches(tiny_traffic))
        sparse = IncrementalState(config)
        sparse.ingest(batches[0])
        sparse.ingest(batches[2])

        empty_day = IncrementalState(config)
        empty_day.ingest(batches[0])
        empty_day.ingest(DayBatch(day=batches[1].day))
        empty_day.ingest(batches[2])
        assert np.array_equal(
            sparse.scores().scores, empty_day.scores().scores
        )
        assert np.array_equal(sparse.blocklist(), empty_day.blocklist())
