"""Service lifecycle, api facade and CLI tests for the streaming layer.

Covers the durability contract (day-then-head checkpoints, resume from
the newest committed day, corrupt/missing checkpoints degrade to a cold
start), the ``repro.api`` query facade with its bounded service cache,
and the ``uncleanliness ingest`` / ``serve`` CLI verbs end to end.
"""

import io
import re

import numpy as np
import pytest

from repro import api
from repro.cli import main
from repro.engine.store import ArrayCodec, ArtifactStore
from repro.obs import metrics as obs_metrics
from repro.sim.timeline import PAPER_WINDOWS
from repro.stream import StreamConfig, UncleanlinessService, day_batches
from repro.stream.checkpoint import day_key, head_key


def _counter(name: str) -> int:
    return obs_metrics.registry().counter(name).snapshot()["value"]


@pytest.fixture
def stream_config():
    return StreamConfig(window=PAPER_WINDOWS.OCTOBER)


@pytest.fixture
def disk_store(tmp_path):
    return ArtifactStore(max_memory_items=8, disk_dir=tmp_path / "cache")


class TestCheckpointResume:
    def _fold(self, service, traffic, days):
        for batch in day_batches(traffic, from_day=service.cursor + 1):
            if days is not None and batch.day >= service.config.window.start_day + days:
                break
            service.ingest(batch)

    def test_resume_restores_committed_state(
        self, stream_config, disk_store, tiny_traffic
    ):
        service = UncleanlinessService(
            stream_config, source="t", store=disk_store
        )
        self._fold(service, tiny_traffic, days=3)
        assert service.cursor == PAPER_WINDOWS.OCTOBER.start_day + 2

        resumed = UncleanlinessService.resume(
            stream_config, source="t", store=disk_store
        )
        assert resumed.cursor == service.cursor
        assert np.array_equal(
            resumed.scores().scores, service.scores().scores
        )

        # Folding the rest from the checkpoint equals folding straight
        # through — the durability layer is invisible to the math.
        self._fold(resumed, tiny_traffic, days=None)
        straight = UncleanlinessService(
            stream_config, source="t2", store=disk_store
        )
        self._fold(straight, tiny_traffic, days=None)
        assert np.array_equal(
            resumed.scores().scores, straight.scores().scores
        )
        assert np.array_equal(resumed.blocklist(), straight.blocklist())

    def test_cold_start_when_no_checkpoint(self, stream_config, disk_store):
        service = UncleanlinessService.resume(
            stream_config, source="nothing-here", store=disk_store
        )
        assert service.cursor == PAPER_WINDOWS.OCTOBER.start_day - 1
        assert service.state.days_ingested == 0

    def test_missing_day_checkpoint_degrades_cold(
        self, stream_config, disk_store, tmp_path, tiny_traffic
    ):
        service = UncleanlinessService(
            stream_config, source="t", store=disk_store
        )
        self._fold(service, tiny_traffic, days=2)
        # Delete the day checkpoints but leave the head pointer; a fresh
        # store (empty memory tier) must fall back to a cold start.
        for path in (tmp_path / "cache").iterdir():
            if ".stream.day-" in path.name:
                path.unlink()
        fresh = ArtifactStore(max_memory_items=8, disk_dir=tmp_path / "cache")
        before = _counter("stream.resume.missing_checkpoint")
        resumed = UncleanlinessService.resume(
            stream_config, source="t", store=fresh
        )
        assert resumed.state.days_ingested == 0
        assert _counter("stream.resume.missing_checkpoint") == before + 1

    def test_corrupt_checkpoint_quarantined_and_cold(
        self, stream_config, disk_store, tmp_path, tiny_traffic
    ):
        service = UncleanlinessService(
            stream_config, source="t", store=disk_store
        )
        self._fold(service, tiny_traffic, days=1)
        day = PAPER_WINDOWS.OCTOBER.start_day
        base = ArtifactStore._base_name(day_key(service.fingerprint, day))
        payloads = [
            path for path in (tmp_path / "cache").iterdir()
            if path.name.startswith(base) and not path.name.endswith(".json")
        ]
        assert payloads, "expected an on-disk day checkpoint payload"
        payloads[0].write_bytes(b"garbage")

        fresh = ArtifactStore(max_memory_items=8, disk_dir=tmp_path / "cache")
        resumed = UncleanlinessService.resume(
            stream_config, source="t", store=fresh
        )
        assert resumed.state.days_ingested == 0
        assert fresh.quarantined >= 1
        assert fresh.info()["quarantine_files"] >= 1

    def test_resume_honours_head_pointer(
        self, stream_config, disk_store, tiny_traffic
    ):
        """The head names the committed day; later uncommitted
        checkpoints are ignored (crash between day and head writes)."""
        service = UncleanlinessService(
            stream_config, source="t", store=disk_store
        )
        self._fold(service, tiny_traffic, days=2)
        first_day = PAPER_WINDOWS.OCTOBER.start_day
        disk_store.put(
            head_key(service.fingerprint),
            np.asarray([first_day], dtype=np.int64),
            ArrayCodec(),
        )
        resumed = UncleanlinessService.resume(
            stream_config, source="t", store=disk_store
        )
        assert resumed.cursor == first_day
        assert resumed.state.days_ingested == 1

    def test_checkpointing_disabled_writes_nothing(
        self, stream_config, disk_store, tiny_traffic
    ):
        service = UncleanlinessService(
            stream_config, source="t", store=disk_store, checkpointing=False
        )
        self._fold(service, tiny_traffic, days=2)
        assert disk_store.puts == 0
        assert disk_store.info()["stream_checkpoints"] == 0

    def test_store_info_counts_stream_checkpoints(
        self, stream_config, disk_store, tiny_traffic
    ):
        service = UncleanlinessService(
            stream_config, source="t", store=disk_store
        )
        self._fold(service, tiny_traffic, days=3)
        assert disk_store.info()["stream_checkpoints"] == 3


class TestApiFacade:
    def test_stream_service_reaches_head(self, small_scenario):
        service = api.stream_service(small_scenario)
        assert service.cursor == PAPER_WINDOWS.OCTOBER.end_day
        assert len(service.scores()) > 0
        assert service.blocklist().size > 0

    def test_service_shared_per_fingerprint(self, small_scenario):
        first = api.stream_service(small_scenario)
        second = api.stream_service(small_scenario)
        assert first is second

    def test_score_matches_top_blocks(self, small_scenario):
        rows = api.top_blocks(5, small_scenario)
        assert len(rows) == 5
        for row in rows:
            address = row["block"].split("/")[0]
            assert api.score(address, small_scenario) == pytest.approx(
                row["score"], abs=5e-5
            )

    def test_is_blocked_follows_threshold(self, small_scenario):
        service = api.stream_service(small_scenario)
        scores = service.scores()
        listed = scores.blocks[scores.scores >= 0.5]
        unlisted = scores.blocks[scores.scores < 0.5]
        assert listed.size and unlisted.size
        assert api.is_blocked(int(listed[0]), small_scenario)
        assert not api.is_blocked(int(unlisted[0]), small_scenario)
        # Unreported space scores 0.0 and is never blocked.
        assert api.score("203.0.113.9", small_scenario) == 0.0
        assert not api.is_blocked("203.0.113.9", small_scenario)

    def test_scenario_and_flags_conflict(self, small_scenario):
        with pytest.raises(ValueError, match="not both"):
            api.stream_service(small_scenario, small=True)


class TestLRUCache:
    def test_evicts_least_recently_used(self):
        cache = api._LRUCache(capacity=2, metric="test.cache.evictions")
        before = _counter("test.cache.evictions")
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh 'a'; 'b' is now the victim
        cache.put("c", 3)
        assert len(cache) == 2
        assert "b" not in cache
        assert "a" in cache and "c" in cache
        assert _counter("test.cache.evictions") == before + 1

    def test_put_existing_key_does_not_evict(self):
        cache = api._LRUCache(capacity=2, metric="test.cache.evictions")
        before = _counter("test.cache.evictions")
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)
        assert cache.get("a") == 10
        assert "b" in cache
        assert _counter("test.cache.evictions") == before

    def test_capacity_below_one_rejected(self):
        with pytest.raises(ValueError, match=">= 1"):
            api._LRUCache(capacity=0, metric="test.cache.evictions")

    def test_capacity_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCENARIO_CACHE_SIZE", "3")
        assert api._cache_capacity("REPRO_SCENARIO_CACHE_SIZE", 8) == 3
        monkeypatch.setenv("REPRO_SCENARIO_CACHE_SIZE", "junk")
        assert api._cache_capacity("REPRO_SCENARIO_CACHE_SIZE", 8) == 8
        monkeypatch.delenv("REPRO_SCENARIO_CACHE_SIZE")
        assert api._cache_capacity("REPRO_SCENARIO_CACHE_SIZE", 8) == 8

    def test_clear_scenario_cache_clears_both_tiers(self, small_scenario):
        api.stream_service(small_scenario)
        assert len(api._SERVICES) > 0
        api.clear_scenario_cache()
        assert len(api._SERVICES) == 0
        assert len(api._SCENARIOS) == 0


@pytest.fixture
def fresh_stream_env(tmp_path):
    """A private cache dir + cleared facade caches, restored afterwards.

    The ingest tests need to observe a cold stream; the session-shared
    default store may already hold the small scenario's checkpoints.
    """
    import os

    from repro.core.stages import reset_scenario_engine
    from repro.engine.store import reset_default_store

    previous = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(tmp_path / "cli-cache")
    api.clear_scenario_cache()
    reset_default_store()
    reset_scenario_engine()
    yield
    if previous is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = previous
    api.clear_scenario_cache()
    reset_default_store()
    reset_scenario_engine()


class TestCLI:
    def test_ingest_resume_serve_roundtrip(self, monkeypatch, capsys,
                                           fresh_stream_env):
        assert main(["ingest", "--small", "--days", "2"]) == 0
        out = capsys.readouterr().out
        assert f"day {PAPER_WINDOWS.OCTOBER.start_day}:" in out
        assert "ingested 2 day(s)" in out
        assert "behind head" in out

        # Second run resumes at the checkpoint and reaches the head.
        assert main(["ingest", "--small"]) == 0
        out = capsys.readouterr().out
        assert f"day {PAPER_WINDOWS.OCTOBER.start_day}:" not in out
        assert "(at head)" in out

        # Third run is a no-op.
        assert main(["ingest", "--small"]) == 0
        assert "nothing to ingest" in capsys.readouterr().out

        # The cache knows about the committed day checkpoints.
        assert main(["cache", "info"]) == 0
        out = capsys.readouterr().out
        match = re.search(r"stream ckpts:\s+(\d+) day checkpoint", out)
        assert match, out
        assert int(match.group(1)) >= PAPER_WINDOWS.OCTOBER.num_days
        assert re.search(r"quarantine:\s+\d+ file", out)

        # Serve answers from the warm index over stdin.
        monkeypatch.setattr(
            "sys.stdin", io.StringIO("info\nscore 10.0.0.1\nblocked 10.0.0.1\nquit\n")
        )
        assert main(["serve", "--small"]) == 0
        out = capsys.readouterr().out
        assert "serving window" in out
        assert "cursor: 286" in out
        assert re.search(r"10\.0\.0\.1 \d\.\d{4}", out)
        assert re.search(r"10\.0\.0\.1 (blocked|allowed)", out)
        assert "served 2 lookup(s)" in out

    def test_serve_top_and_unknown_command(self, monkeypatch, capsys,
                                           small_scenario):
        monkeypatch.setattr("sys.stdin", io.StringIO("top 3\nbogus\nquit\n"))
        assert main(["serve", "--small"]) == 2
        captured = capsys.readouterr()
        assert len(re.findall(r"score=0\.\d+", captured.out)) == 3
        assert "unknown command: bogus" in captured.err

    def test_serve_rejects_malformed_address(self, monkeypatch, capsys,
                                             small_scenario):
        monkeypatch.setattr(
            "sys.stdin", io.StringIO("score not.an.ip\nquit\n")
        )
        assert main(["serve", "--small"]) == 2
        assert "?" in capsys.readouterr().err
